//! Dominator and post-dominator trees, dominance frontiers, and iterated
//! dominance frontiers — plus *incremental maintenance* for the local CFG
//! edits control-flow melding performs.
//!
//! Implements the Cooper–Harvey–Kennedy "engineered" dominance algorithm on
//! reverse post-order. The post-dominator tree runs the same core on the
//! reversed CFG with a virtual exit node collecting all `ret` blocks.
//!
//! ## Incremental updates
//!
//! [`DomTree::try_update`] / [`PostDomTree::try_update`] accept the
//! normalized [`EditSummary`] of a mutation window (derived from the
//! `darm-ir` journal) and update the existing tree without a from-scratch
//! recompute when the edit batch matches a supported shape:
//!
//! * **No graph change** (blocks added/removed off the reachable region):
//!   arrays extend/clear in place.
//! * **Edge subdivision** (the landing pads of region simplification —
//!   "split edge" generalized to many sources): an exact O(depth) local
//!   rule on the dominator tree, in the spirit of Ramalingam–Reps.
//! * **Insertion-only batches** ("redirect branch" toward a new target,
//!   newly attached blocks): re-converge the CHK fixpoint *seeded from the
//!   old tree*. For pure insertions the old tree is a pre-fixpoint above
//!   the true solution, so the descending iteration provably lands on the
//!   exact new tree — typically in one sweep over the affected region.
//! * **Deletion-containing batches** (the bulk of meld surgery: region
//!   blocks unlinked, branches collapsed, landing pads removed): an
//!   LLVM-style *affected-subtree* recompute — see below.
//!
//! Only wholesale rewrites (an anchor at the root, a virtual-exit edge
//! rewired, a saturated journal) return `None` and make the caller
//! recompute. Either way the result is *bit-identical* to a fresh
//! computation — `prop_incremental.rs` holds `try_update` to that under
//! randomized edit sequences, deletions included. [`DomTree::changed_from`]
//! then reports which blocks' dominator chains differ between two trees,
//! which is what lets SSA repair rescan only the region whose dominance
//! actually moved.
//!
//! ## The affected-subtree rule
//!
//! For a batch containing deletions the updater collects the *old tree
//! positions* of every perturbed endpoint: both ends of each net-changed
//! edge, plus — because reachability flips drag a block's unedited edges in
//! or out of the graph invisibly to the journal — every block that joined
//! or left the reachable region together with its still-reachable
//! successors. The nearest common ancestor `c` of that set in the old tree
//! anchors the rebuild (the NCA/reachability rule, in the spirit of the
//! incremental maintenance LLVM's `DomTreeUpdater` performs): a deleted
//! edge `(u, v)` only perturbs nodes below `NCA(u, v)` — `v`'s dominators
//! can only *grow* toward that ancestor when `v` loses a dominating path —
//! and dually an inserted edge only perturbs nodes below its NCA. Nodes
//! outside `c`'s strict subtree provably keep their dominator sets: any
//! path that could change them would have to cross a changed edge, and
//! every changed edge lies entirely under `c`.
//!
//! The rebuild therefore resets exactly `c`'s strict old subtree (plus
//! freshly reachable nodes, which always attach strictly below `c`) to ⊤
//! and re-runs the CHK fixpoint over just that region, with the rest of
//! the tree's numbering kept intact as a fixed boundary. The restricted
//! iteration is exact: the dominator dataflow framework is distributive,
//! so its MFP equals the meet over paths, and decomposing every real
//! entry→x path at its last boundary node shows the restricted meet equals
//! the full one.
//!
//! **When full recompute still triggers:** the anchor walks to the root
//! (the batch spans the whole function — a rebuild "under the root" *is*
//! a full recompute, so the caller's straight path is cheaper); the
//! anchor's subtree covers half the reachable nodes or more (same
//! economics — the constrained fixpoint would converge on the same work
//! plus bookkeeping, which is why [`DomTree::absorb_viable`] /
//! [`PostDomTree::absorb_viable`] let callers reject such batches from
//! the raw edit log before even normalizing it); a post-dominator batch
//! rewires virtual-exit edges (a block gains its first or loses its last
//! successor, or a `ret` block joins/leaves the reachable region — the
//! anchor would be the virtual exit itself); or the mutation journal
//! saturated and no [`EditSummary`] exists at all. The
//! `AnalysisManager`'s query path adds one more gate on top: it only
//! *attempts* an update when the probe-level event count is small
//! relative to the function, so the unprofitable case costs an O(1)
//! comparison, not a replay.

use crate::cfg::Cfg;
use darm_ir::{BlockId, CfgEdit, Function};

/// Core dominator computation over an abstract graph of `n` nodes.
/// Returns `idom[v]` (None for the root and unreachable nodes).
fn compute_idoms(n: usize, root: usize, preds: &[Vec<usize>], rpo: &[usize]) -> Vec<Option<usize>> {
    compute_idoms_seeded(n, root, preds, rpo, None)
}

/// [`compute_idoms`] with an optional seed tree. Seeding is only sound when
/// the seed is a pre-fixpoint of the new graph's dominator equations —
/// i.e. the previous tree after *edge insertions only* (constraints only
/// tighten, so the descending iteration still converges to the unique
/// greatest fixpoint, the true dominator tree).
fn compute_idoms_seeded(
    n: usize,
    root: usize,
    preds: &[Vec<usize>],
    rpo: &[usize],
    seed: Option<&[Option<usize>]>,
) -> Vec<Option<usize>> {
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    if let Some(seed) = seed {
        for &b in rpo {
            // Seed only nodes the old tree knew as reachable; freshly
            // reachable nodes start unconstrained (⊤).
            if b != root {
                if let Some(Some(old)) = seed.get(b) {
                    if rpo_index[*old] != usize::MAX {
                        idom[b] = Some(*old);
                    }
                }
            }
        }
    }
    idom[root] = Some(root);
    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed node must have idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed node must have idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom[root] = None; // root has no immediate dominator
    idom
}

fn tree_depths(n: usize, idom: &[Option<usize>], root: usize) -> Vec<u32> {
    let mut depth = vec![u32::MAX; n];
    depth[root] = 0;
    // Nodes form a forest rooted at `root`; resolve depths iteratively.
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if depth[v] != u32::MAX {
                continue;
            }
            if let Some(d) = idom[v] {
                if depth[d] != u32::MAX {
                    depth[v] = depth[d] + 1;
                    changed = true;
                }
            }
        }
    }
    depth
}

/// The dominator tree of a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<usize>>,
    depth: Vec<u32>,
    entry: usize,
}

impl DomTree {
    /// Computes the dominator tree from a CFG snapshot.
    pub fn new(func: &Function, cfg: &Cfg) -> DomTree {
        let n = func.block_capacity();
        let mut preds = vec![Vec::new(); n];
        for &b in cfg.rpo() {
            for &p in cfg.preds(b) {
                if cfg.is_reachable(p) {
                    preds[b.index()].push(p.index());
                }
            }
        }
        let rpo: Vec<usize> = cfg.rpo().iter().map(|b| b.index()).collect();
        let entry = cfg.entry().index();
        let idom = compute_idoms(n, entry, &preds, &rpo);
        let depth = tree_depths(n, &idom, entry);
        DomTree { idom, depth, entry }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()].map(BlockId::new)
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let (a, mut b) = (a.index(), b.index());
        if self.depth[a] == u32::MAX || self.depth[b] == u32::MAX {
            return false;
        }
        while self.depth[b] > self.depth[a] {
            b = self.idom[b].expect("depth > 0 implies idom");
        }
        a == b
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The entry block the tree is rooted at.
    pub fn root(&self) -> BlockId {
        BlockId::new(self.entry)
    }

    /// Dominance frontiers (Cooper's algorithm). Indexed by block arena
    /// index; each frontier is sorted and deduplicated.
    pub fn dominance_frontiers(&self, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = self.idom.len();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in cfg.rpo() {
            let preds = cfg.preds(b);
            if preds.len() < 2 {
                continue;
            }
            let Some(idom_b) = self.idom[b.index()] else {
                continue;
            };
            for &p in preds {
                if !cfg.is_reachable(p) {
                    continue;
                }
                let mut runner = p.index();
                while runner != idom_b {
                    df[runner].push(b);
                    match self.idom[runner] {
                        Some(next) => runner = next,
                        None => break,
                    }
                }
            }
        }
        for fr in &mut df {
            fr.sort();
            fr.dedup();
        }
        df
    }

    /// Iterated dominance frontier of a set of blocks — the φ-placement set
    /// of classic SSA construction, also used for sync-dependence and SSA
    /// repair.
    pub fn iterated_dominance_frontier(&self, cfg: &Cfg, seeds: &[BlockId]) -> Vec<BlockId> {
        let df = self.dominance_frontiers(cfg);
        DomTree::iterated_frontier_from(&df, seeds)
    }

    /// [`DomTree::iterated_dominance_frontier`] over precomputed frontiers,
    /// so callers that query many seed sets against one CFG state (sync
    /// dependence per divergent branch, SSA repair per broken definition)
    /// compute the frontiers once and iterate many times.
    pub fn iterated_frontier_from(df: &[Vec<BlockId>], seeds: &[BlockId]) -> Vec<BlockId> {
        let n = df.len();
        let mut in_set = vec![false; n];
        let mut work: Vec<BlockId> = seeds.to_vec();
        let mut out = Vec::new();
        while let Some(b) = work.pop() {
            for &j in &df[b.index()] {
                if !in_set[j.index()] {
                    in_set[j.index()] = true;
                    out.push(j);
                    work.push(j);
                }
            }
        }
        out.sort();
        out
    }

    /// Nearest common ancestor of a non-empty set of reachable blocks.
    fn nca_many(&self, blocks: &[BlockId]) -> Option<BlockId> {
        let mut acc = blocks[0].index();
        if self.depth[acc] == u32::MAX {
            return None;
        }
        for &b in &blocks[1..] {
            let mut other = b.index();
            if self.depth[other] == u32::MAX {
                return None;
            }
            while acc != other {
                if self.depth[acc] >= self.depth[other] {
                    acc = self.idom[acc]?;
                } else {
                    other = self.idom[other].expect("depth > 0 implies idom");
                }
            }
        }
        Some(BlockId::new(acc))
    }

    /// Incrementally updates the tree for the mutation window summarized in
    /// `summary`, where `cfg` is a snapshot of the *post-edit* CFG. Returns
    /// `None` when the batch shape is unsupported (the caller recomputes);
    /// a returned tree is exactly equal to `DomTree::new(func, cfg)`.
    pub fn try_update(&self, func: &Function, cfg: &Cfg, summary: &EditSummary) -> Option<DomTree> {
        let n = func.block_capacity();
        // Structurally clean: reachable subgraph untouched, only extend or
        // clear arena slots.
        if summary.is_structurally_clean() {
            if summary
                .removed_blocks
                .iter()
                .any(|&b| self.depth.get(b.index()).copied() != Some(u32::MAX))
            {
                return None; // a reachable block vanished without edge edits?
            }
            let mut idom = self.idom.clone();
            let mut depth = self.depth.clone();
            idom.resize(n, None);
            depth.resize(n, u32::MAX);
            for &b in &summary.removed_blocks {
                idom[b.index()] = None;
                depth[b.index()] = u32::MAX;
            }
            return Some(DomTree {
                idom,
                depth,
                entry: self.entry,
            });
        }
        // Edge subdivision (landing pad): exact local rule.
        if let Some((m, t, sources)) = summary.as_subdivision(func) {
            if t.index() >= self.depth.len() || self.depth[t.index()] == u32::MAX {
                return None;
            }
            if sources
                .iter()
                .any(|&s| s.index() >= self.depth.len() || self.depth[s.index()] == u32::MAX)
            {
                return None;
            }
            let mut idom = self.idom.clone();
            idom.resize(n, None);
            // `m` captures `t` ⇔ every entry path to `t` crosses a
            // redirected edge ⇔ every current in-edge of `t` comes from
            // `m` or from a block `t` itself dominated (a back edge,
            // which contributes no entry path).
            let covered = cfg
                .preds(t)
                .iter()
                .all(|&p| p == m || (p.index() < self.depth.len() && self.dominates(t, p)));
            if covered {
                let old_idom_t = self.idom[t.index()]?;
                idom[m.index()] = Some(old_idom_t);
                idom[t.index()] = Some(m.index());
            } else {
                let nca = self.nca_many(&sources)?;
                idom[m.index()] = Some(nca.index());
            }
            let depth = depths_in_order(&idom, self.entry, cfg.rpo().iter().map(|b| b.index()), n);
            return Some(DomTree {
                idom,
                depth,
                entry: self.entry,
            });
        }
        let rpo: Vec<usize> = cfg.rpo().iter().map(|b| b.index()).collect();
        // Insertion-only batch: re-converge the fixpoint seeded from the
        // old tree (sound because constraints only tighten).
        if summary.removed_edges.is_empty() && summary.removed_blocks.is_empty() {
            let mut preds = vec![Vec::new(); n];
            for &b in cfg.rpo() {
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) {
                        preds[b.index()].push(p.index());
                    }
                }
            }
            let idom = compute_idoms_seeded(n, self.entry, &preds, &rpo, Some(&self.idom));
            let depth = depths_in_order(&idom, self.entry, rpo.iter().copied(), n);
            return Some(DomTree {
                idom,
                depth,
                entry: self.entry,
            });
        }
        // Deletion-containing batch: affected-subtree recompute anchored at
        // the NCA of every perturbed endpoint's old position (see the
        // module docs for the rule).
        let old_reach = |i: usize| i < self.depth.len() && self.depth[i] != u32::MAX;
        let mut interesting: Vec<usize> = Vec::new();
        for &(u, v) in summary.added_edges.iter().chain(&summary.removed_edges) {
            for b in [u.index(), v.index()] {
                if old_reach(b) {
                    interesting.push(b);
                }
            }
        }
        for i in 0..n {
            let b = BlockId::new(i);
            if cfg.is_reachable(b) == old_reach(i) {
                continue;
            }
            // A block that joined or left the reachable region drags its
            // unedited out-edges with it — effective edge changes the
            // journal never recorded.
            if old_reach(i) {
                interesting.push(i);
            }
            if func.is_block_alive(b) {
                for &s in func.succ_slice(b) {
                    if old_reach(s.index()) {
                        interesting.push(s.index());
                    }
                }
            }
        }
        // Predecessor lists come straight from the CFG snapshot (its
        // entries are reachable by construction) — no per-node copies.
        let (idom, depth) = rebuild_affected_subtree(
            n,
            self.entry,
            &self.idom,
            &self.depth,
            |b, visit| {
                for &p in cfg.preds(BlockId::new(b)) {
                    visit(p.index());
                }
            },
            &rpo,
            &mut interesting,
        )?;
        Some(DomTree {
            idom,
            depth,
            entry: self.entry,
        })
    }

    /// Cheap viability pre-filter for [`DomTree::try_update`] on a *raw*
    /// (unnormalized) edit log: folds the old-reachable edit endpoints
    /// into their nearest common ancestor and estimates the rebuild
    /// region, rejecting batches whose affected subtree would rival the
    /// whole tree — all before any normalization is paid. `false` only
    /// skips the attempt (the caller recomputes); it never affects
    /// results. Raw endpoints are a superset of the normalized ones, so
    /// the anchor here is an ancestor of the true anchor and the estimate
    /// errs toward rejection.
    pub fn absorb_viable(&self, edits: &[CfgEdit]) -> bool {
        viable_anchor_region(&self.idom, &self.depth, self.entry, usize::MAX, edits)
    }

    /// Which blocks' dominator *chains* differ between `old` and `new` —
    /// i.e. the blocks for which any `dominates(_, b)` answer may have
    /// changed. Indexed by block arena index of `new`'s function state;
    /// blocks unreachable in the new tree are reported unchanged (no
    /// analysis walks them).
    pub fn changed_from(old: &DomTree, new: &DomTree, cfg: &Cfg) -> Vec<bool> {
        let n = new.idom.len();
        let mut changed = vec![false; n];
        for &b in cfg.rpo() {
            let i = b.index();
            let old_covers = i < old.idom.len() && old.depth[i] != u32::MAX;
            let idom_differs = !old_covers || old.idom[i] != new.idom[i];
            changed[i] = idom_differs
                || new.idom[i].is_some_and(|p| changed[p])
                || old.depth[i] != new.depth[i];
        }
        changed
    }
}

/// Nearest common ancestor over raw idom/depth arrays (shared by the
/// forward and reversed trees). `None` when a climb falls off the tree.
fn nca_raw(idom: &[Option<usize>], depth: &[u32], nodes: &[usize]) -> Option<usize> {
    let mut acc = *nodes.first()?;
    if depth[acc] == u32::MAX {
        return None;
    }
    for &b in &nodes[1..] {
        let mut other = b;
        if depth[other] == u32::MAX {
            return None;
        }
        while acc != other {
            if depth[acc] >= depth[other] {
                acc = idom[acc]?;
            } else {
                other = idom[other]?;
            }
        }
    }
    Some(acc)
}

/// Shared implementation of the `absorb_viable` pre-filters: anchors the
/// raw edit endpoints at their NCA in the old tree and estimates the
/// rebuild region. `remap` translates the virtual-exit slot for the
/// reversed tree (pass `usize::MAX` to disable).
fn viable_anchor_region(
    idom: &[Option<usize>],
    depth: &[u32],
    root: usize,
    remap_from: usize,
    edits: &[CfgEdit],
) -> bool {
    let reach = |i: usize| i < depth.len() && depth[i] != u32::MAX;
    let mut acc: Option<usize> = None;
    let mut fold = |b: BlockId| {
        let mut i = b.index();
        if i == remap_from || !reach(i) {
            return true;
        }
        let Some(mut a) = acc else {
            acc = Some(i);
            return true;
        };
        while a != i {
            let climb = |x: usize| idom[x];
            if depth[a] >= depth[i] {
                match climb(a) {
                    Some(p) => a = p,
                    None => return false,
                }
            } else {
                match climb(i) {
                    Some(p) => i = p,
                    None => return false,
                }
            }
        }
        acc = Some(a);
        true
    };
    for &e in edits {
        let ok = match e {
            CfgEdit::BlockAdded(_) => true,
            CfgEdit::BlockRemoved(b) => fold(b),
            CfgEdit::EdgeInserted(u, v) | CfgEdit::EdgeDeleted(u, v) => fold(u) && fold(v),
        };
        if !ok {
            return false;
        }
    }
    let Some(c) = acc else {
        // No old-reachable endpoint at all: the real path decides (a
        // structurally clean or all-fresh batch is always cheap).
        return true;
    };
    if c == root {
        return false;
    }
    // Estimate the rebuild region: reachable nodes strictly below the
    // anchor, against all reachable nodes.
    let (mut below, mut total) = (0usize, 0usize);
    for i in 0..depth.len() {
        if depth[i] == u32::MAX {
            continue;
        }
        total += 1;
        if strictly_below_raw(idom, depth, c, i) {
            below += 1;
        }
    }
    below * 2 <= total
}

/// Whether `c` strictly dominates `b` in the tree described by the raw
/// arrays (both must be in-bounds; `b` may be unreachable).
fn strictly_below_raw(idom: &[Option<usize>], depth: &[u32], c: usize, b: usize) -> bool {
    if depth[b] == u32::MAX || depth[c] == u32::MAX || depth[b] <= depth[c] {
        return false;
    }
    let mut x = b;
    while depth[x] > depth[c] {
        x = match idom[x] {
            Some(p) => p,
            None => return false,
        };
    }
    x == c
}

/// The affected-subtree recompute shared by [`DomTree::try_update`] and
/// [`PostDomTree::try_update`] (see the module docs for the rule and its
/// correctness argument).
///
/// `old_idom`/`old_depth` describe the pre-edit tree *in the new slot
/// space* (the post-dominator caller remaps its virtual exit first);
/// `preds`/`rpo` the post-edit graph; `interesting` the old positions of
/// every perturbed endpoint (all old-reachable). Returns the exact new
/// `(idom, depth)` arrays, or `None` when the anchor reaches the root —
/// a full recompute is as cheap there.
fn rebuild_affected_subtree(
    n: usize,
    root: usize,
    old_idom: &[Option<usize>],
    old_depth: &[u32],
    preds_of: impl Fn(usize, &mut dyn FnMut(usize)),
    rpo: &[usize],
    interesting: &mut Vec<usize>,
) -> Option<(Vec<Option<usize>>, Vec<u32>)> {
    interesting.sort_unstable();
    interesting.dedup();
    let anchor = match interesting.as_slice() {
        [] => None,
        nodes => Some(nca_raw(old_idom, old_depth, nodes)?),
    };
    if anchor == Some(root) {
        return None;
    }
    // Affected = the anchor's strict subtree in the old tree, plus nodes
    // with no old position (fresh blocks, newly reachable) — which always
    // attach strictly below the anchor. Collected (in RPO order) before
    // any work array is allocated, so an unprofitable rebuild bails to
    // the caller's recompute having paid only tree climbs.
    let mut affected_nodes: Vec<usize> = Vec::new();
    for &b in rpo {
        if b == root {
            continue;
        }
        let fresh = b >= old_depth.len() || old_depth[b] == u32::MAX;
        let reset = match anchor {
            Some(c) => fresh || strictly_below_raw(old_idom, old_depth, c, b),
            None => fresh,
        };
        if reset {
            affected_nodes.push(b);
        }
    }
    if !affected_nodes.is_empty() && interesting.is_empty() {
        // Fresh reachable nodes with no old-reachable witness to anchor at
        // cannot happen (reachability enters through an old node) — bail
        // rather than guess if it ever does.
        return None;
    }
    // The rebuild only beats a from-scratch recompute when the region it
    // re-solves is genuinely smaller than the function: at half the
    // reachable nodes or more, the constrained iteration converges on the
    // same work plus bookkeeping.
    if affected_nodes.len() * 2 > rpo.len() {
        return None;
    }
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    // Carry the old tree into the new slot space; nodes that left the
    // reachable region lose their entries.
    let mut idom: Vec<Option<usize>> = vec![None; n];
    for i in 0..n.min(old_idom.len()) {
        if old_depth[i] != u32::MAX && rpo_index[i] != usize::MAX {
            idom[i] = old_idom[i];
        }
    }
    for &b in &affected_nodes {
        idom[b] = None; // reset the rebuild region to ⊤
    }
    if !affected_nodes.is_empty() {
        // Constrained CHK fixpoint over the affected region only;
        // everything outside is a fixed boundary whose dominators
        // provably did not move.
        idom[root] = Some(root);
        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = idom[a].expect("processed node must have idom");
                }
                while rpo_index[b] > rpo_index[a] {
                    b = idom[b].expect("processed node must have idom");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &affected_nodes {
                let mut new_idom: Option<usize> = None;
                preds_of(b, &mut |p| {
                    if idom[p].is_none() {
                        return;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                });
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom[root] = None;
    }
    let depth = depths_in_order(&idom, root, rpo.iter().copied(), n);
    Some((idom, depth))
}

/// Rebuilds the depth array from an idom array, visiting nodes in an order
/// where every node's idom precedes it (reverse post-order has this
/// property for dominator trees).
fn depths_in_order(
    idom: &[Option<usize>],
    root: usize,
    order: impl Iterator<Item = usize>,
    n: usize,
) -> Vec<u32> {
    let mut depth = vec![u32::MAX; n];
    depth[root] = 0;
    for b in order {
        if b == root {
            continue;
        }
        if let Some(p) = idom[b] {
            if depth[p] != u32::MAX {
                depth[b] = depth[p] + 1;
            }
        }
    }
    depth
}

/// Net block-graph change of a journal window, normalized against the
/// *post-edit* function: an edge (or block) appears here only if its
/// existence actually flipped across the window — transient add/remove
/// pairs and conservative same-edge delete/insert records cancel out.
#[derive(Debug, Clone, Default)]
pub struct EditSummary {
    /// Blocks that are alive now but were not before the window.
    pub added_blocks: Vec<BlockId>,
    /// Blocks that were alive before the window and are tombstoned now.
    pub removed_blocks: Vec<BlockId>,
    /// Edges that exist now but did not before.
    pub added_edges: Vec<(BlockId, BlockId)>,
    /// Edges that existed before but do not now.
    pub removed_edges: Vec<(BlockId, BlockId)>,
}

impl EditSummary {
    /// Normalizes an ordered [`CfgEdit`] log against the current state of
    /// `func`. Edge existence *before* the window is reconstructed
    /// arithmetically: `count_before = count_now - inserts + deletes` per
    /// (from, to) pair, so duplicate edges (`br c, X, X`) and cancelling
    /// event pairs are handled exactly.
    pub fn normalize(func: &Function, edits: &[CfgEdit]) -> EditSummary {
        let mut blocks_added: Vec<BlockId> = Vec::new();
        let mut blocks_removed: Vec<BlockId> = Vec::new();
        // Per-pair (insert, delete) counts, aggregated by sorting — the
        // windows are small enough that a sort beats hashing.
        let mut events: Vec<(BlockId, BlockId, i64, i64)> = Vec::with_capacity(edits.len());
        for &e in edits {
            match e {
                CfgEdit::BlockAdded(b) => blocks_added.push(b),
                CfgEdit::BlockRemoved(b) => blocks_removed.push(b),
                CfgEdit::EdgeInserted(u, v) => events.push((u, v, 1, 0)),
                CfgEdit::EdgeDeleted(u, v) => events.push((u, v, 0, 1)),
            }
        }
        let mut summary = EditSummary::default();
        blocks_added.sort_unstable();
        blocks_added.dedup();
        for &b in &blocks_added {
            // Added and later removed in the same window → net nothing.
            if func.is_block_alive(b) {
                summary.added_blocks.push(b);
            }
        }
        blocks_removed.sort_unstable();
        blocks_removed.dedup();
        for b in blocks_removed {
            // A block can only be added once (fresh arena slot), so a
            // removed block that was also added nets out entirely.
            if !func.is_block_alive(b) && blocks_added.binary_search(&b).is_err() {
                summary.removed_blocks.push(b);
            }
        }
        events.sort_unstable_by_key(|&(u, v, _, _)| (u, v));
        let mut i = 0;
        while i < events.len() {
            let (u, v, mut ins, mut del) = events[i];
            i += 1;
            while i < events.len() && (events[i].0, events[i].1) == (u, v) {
                ins += events[i].2;
                del += events[i].3;
                i += 1;
            }
            let now = if func.is_block_alive(u) {
                func.succ_slice(u).iter().filter(|&&s| s == v).count() as i64
            } else {
                0
            };
            let before = now - ins + del;
            match (before > 0, now > 0) {
                (false, true) => summary.added_edges.push((u, v)),
                (true, false) => summary.removed_edges.push((u, v)),
                _ => {}
            }
        }
        summary
    }

    /// Whether the reachable block graph is untouched: no edge flipped and
    /// every removed block is gone without ever having carried edges.
    pub fn is_structurally_clean(&self) -> bool {
        self.added_edges.is_empty() && self.removed_edges.is_empty()
    }

    /// Whether the window net-deleted an edge — the batch shape that takes
    /// the affected-subtree path in `try_update` (what the
    /// `in_place_deletion_updates` counter attributes).
    pub fn has_deletions(&self) -> bool {
        !self.removed_edges.is_empty()
    }

    /// Whether `u` had any out-edge before the window. Existence-level, not
    /// multiset arithmetic (a duplicate-target branch has two successor
    /// entries but one edge): an edge existed before iff it exists now and
    /// was not added in the window, or was removed in the window.
    fn had_out_edge_before(&self, func: &Function, u: BlockId) -> bool {
        if func.is_block_alive(u)
            && func
                .succ_slice(u)
                .iter()
                .any(|&v| !self.added_edges.contains(&(u, v)))
        {
            return true;
        }
        self.removed_edges.iter().any(|&(a, _)| a == u)
    }

    /// Recognizes the *edge subdivision* shape: all edges `s → t` from a
    /// source set `S` redirected through one fresh block `m` (`s → m → t`).
    /// Returns `(m, t, S)`.
    fn as_subdivision(&self, func: &Function) -> Option<(BlockId, BlockId, Vec<BlockId>)> {
        if !self.removed_blocks.is_empty() || self.added_blocks.len() != 1 {
            return None;
        }
        let m = self.added_blocks[0];
        if !func.is_block_alive(m) || func.succs(m).len() != 1 {
            return None;
        }
        let t = func.succs(m)[0];
        // Expected additions: (m, t) plus (s, m) for each source.
        let mut sources = Vec::new();
        let mut saw_exit_edge = false;
        for &(u, v) in &self.added_edges {
            if (u, v) == (m, t) {
                saw_exit_edge = true;
            } else if v == m {
                sources.push(u);
            } else {
                return None;
            }
        }
        if !saw_exit_edge || sources.is_empty() {
            return None;
        }
        sources.sort_unstable();
        sources.dedup();
        let mut removed: Vec<BlockId> = self
            .removed_edges
            .iter()
            .map(|&(u, v)| if v == t { Some(u) } else { None })
            .collect::<Option<Vec<_>>>()?;
        removed.sort_unstable();
        removed.dedup();
        if removed != sources {
            return None;
        }
        Some((m, t, sources))
    }
}

/// The post-dominator tree of a function, computed over the reversed CFG
/// with a virtual exit.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    idom: Vec<Option<usize>>,
    depth: Vec<u32>,
    /// Index of the virtual exit node (== number of block slots).
    virtual_exit: usize,
}

/// Builds the reversed graph (with a virtual exit collecting terminator-
/// less blocks) and its reverse post-order from the virtual exit.
fn build_reverse_graph(n: usize, cfg: &Cfg) -> (Vec<Vec<usize>>, Vec<usize>) {
    let virtual_exit = n;
    // Reversed graph: rev_preds[v] = successors of v in the original CFG,
    // plus edges ret-block -> virtual exit.
    let mut rev_preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for &b in cfg.rpo() {
        for &s in cfg.succs(b) {
            rev_preds[b.index()].push(s.index());
        }
        if cfg.succs(b).is_empty() {
            rev_preds[b.index()].push(virtual_exit);
        }
    }
    // RPO of the reversed graph = reverse of a post-order DFS from the
    // virtual exit following reversed edges (original succ -> pred).
    let mut rev_succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (v, ps) in rev_preds.iter().enumerate() {
        for &p in ps {
            rev_succs[p].push(v);
        }
    }
    let mut visited = vec![false; n + 1];
    let mut post = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(virtual_exit, 0)];
    visited[virtual_exit] = true;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < rev_succs[v].len() {
            let s = rev_succs[v][*i];
            *i += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(v);
            stack.pop();
        }
    }
    post.reverse();
    (rev_preds, post)
}

impl PostDomTree {
    /// Computes the post-dominator tree from a CFG snapshot.
    pub fn new(func: &Function, cfg: &Cfg) -> PostDomTree {
        let n = func.block_capacity();
        let virtual_exit = n;
        let (rev_preds, post) = build_reverse_graph(n, cfg);
        let idom = compute_idoms(n + 1, virtual_exit, &rev_preds, &post);
        let depth = tree_depths(n + 1, &idom, virtual_exit);
        PostDomTree {
            idom,
            depth,
            virtual_exit,
        }
    }

    /// Incremental analogue of [`DomTree::try_update`] on the reversed
    /// graph (virtual exit as the root): structurally-clean windows extend
    /// in place, insertion-only batches re-converge seeded from the old
    /// tree, and deletion-containing batches run the affected-subtree
    /// recompute. The one shape the reversed graph cannot absorb locally is
    /// a rewire of the virtual exit's own edges — a block gaining its first
    /// or losing its last successor, a `ret` block joining or leaving the
    /// reachable region — which anchors the update at the root and returns
    /// `None` (the caller recomputes). A returned tree equals
    /// `PostDomTree::new(func, cfg)` exactly.
    pub fn try_update(
        &self,
        func: &Function,
        cfg: &Cfg,
        summary: &EditSummary,
    ) -> Option<PostDomTree> {
        let n = func.block_capacity();
        let remap = |v: usize| if v == self.virtual_exit { n } else { v };
        if summary.is_structurally_clean() {
            if summary
                .removed_blocks
                .iter()
                .any(|&b| self.depth.get(b.index()).copied() != Some(u32::MAX))
            {
                return None;
            }
            // Extend to the new capacity, moving the virtual exit from the
            // old arena bound to the new one.
            let mut idom = vec![None; n + 1];
            let mut depth = vec![u32::MAX; n + 1];
            for v in 0..self.idom.len() {
                let tv = remap(v);
                idom[tv] = self.idom[v].map(remap);
                depth[tv] = self.depth[v];
            }
            for &b in &summary.removed_blocks {
                idom[b.index()] = None;
                depth[b.index()] = u32::MAX;
            }
            return Some(PostDomTree {
                idom,
                depth,
                virtual_exit: n,
            });
        }
        // A source whose successor count crossed zero gains or loses its
        // virtual-exit edge: the root's own edges move — recompute.
        let mut sources: Vec<BlockId> = summary
            .added_edges
            .iter()
            .chain(&summary.removed_edges)
            .map(|&(u, _)| u)
            .collect();
        sources.sort_unstable();
        sources.dedup();
        for &u in &sources {
            let newly_added = summary.added_blocks.contains(&u);
            let was_unreachable =
                u.index() >= self.depth.len() || self.depth[u.index()] == u32::MAX;
            // Tombstoned sources vanish from the graph wholesale (no exit
            // edge appears); fresh or previously exit-less sources had no
            // exit edge to lose. Either way the reachability-flip scan
            // below owns any remaining root rewiring.
            if newly_added || was_unreachable || !func.is_block_alive(u) {
                continue;
            }
            let now_has = !func.succ_slice(u).is_empty();
            if now_has != summary.had_out_edge_before(func, u) {
                return None;
            }
        }
        // A removed block with no prior out-edge was a `ret`: its
        // virtual-exit edge vanishes with it.
        for &b in &summary.removed_blocks {
            let was_reachable = b.index() < self.depth.len() && self.depth[b.index()] != u32::MAX;
            if was_reachable && !summary.had_out_edge_before(func, b) {
                return None;
            }
        }
        let (rev_preds, post) = build_reverse_graph(n, cfg);
        if summary.removed_edges.is_empty() && summary.removed_blocks.is_empty() {
            // A forward insertion is a reverse insertion too: re-converge
            // seeded from the old tree.
            let mut seed = vec![None; n + 1];
            for v in 0..self.idom.len() {
                seed[remap(v)] = self.idom[v].map(remap);
            }
            let idom = compute_idoms_seeded(n + 1, n, &rev_preds, &post, Some(&seed));
            let depth = depths_in_order(&idom, n, post.iter().copied(), n + 1);
            return Some(PostDomTree {
                idom,
                depth,
                virtual_exit: n,
            });
        }
        // Deletion-containing batch: affected-subtree recompute on the
        // reversed graph. Old arrays move into the new slot space first
        // (the virtual exit shifts to the new arena bound).
        let mut old_idom = vec![None; n + 1];
        let mut old_depth = vec![u32::MAX; n + 1];
        for v in 0..self.idom.len() {
            let tv = remap(v);
            old_idom[tv] = self.idom[v].map(remap);
            old_depth[tv] = self.depth[v];
        }
        let old_reach = |i: usize| old_depth[i] != u32::MAX;
        let mut new_reach = vec![false; n + 1];
        for &v in &post {
            new_reach[v] = true;
        }
        let mut interesting: Vec<usize> = Vec::new();
        for &(u, v) in summary.added_edges.iter().chain(&summary.removed_edges) {
            for b in [u.index(), v.index()] {
                if old_reach(b) {
                    interesting.push(b);
                }
            }
        }
        for (i, &now) in new_reach.iter().take(n).enumerate() {
            if now == old_reach(i) {
                continue;
            }
            let b = BlockId::new(i);
            // A ret block joining or leaving the reversed graph rewires
            // the virtual exit itself.
            if func.is_block_alive(b) && func.succ_slice(b).is_empty() {
                return None;
            }
            if old_reach(i) {
                interesting.push(i);
            }
            // Effective edge changes the journal never saw: a flipped
            // node's reverse out-edges point at its forward predecessors,
            // and — when the flip is the node joining or leaving the
            // reversed graph wholesale (a *forward*-reachability flip) —
            // its reverse in-edges arrive from its forward successors.
            for &p in cfg.preds(b) {
                if old_reach(p.index()) {
                    interesting.push(p.index());
                }
            }
            if func.is_block_alive(b) {
                for &s in func.succ_slice(b) {
                    if old_reach(s.index()) {
                        interesting.push(s.index());
                    }
                }
            }
        }
        let (idom, depth) = rebuild_affected_subtree(
            n + 1,
            n,
            &old_idom,
            &old_depth,
            |b, visit| {
                for &p in &rev_preds[b] {
                    visit(p);
                }
            },
            &post,
            &mut interesting,
        )?;
        Some(PostDomTree {
            idom,
            depth,
            virtual_exit: n,
        })
    }

    /// Cheap viability pre-filter for [`PostDomTree::try_update`] — the
    /// reversed-tree sibling of [`DomTree::absorb_viable`].
    pub fn absorb_viable(&self, edits: &[CfgEdit]) -> bool {
        viable_anchor_region(
            &self.idom,
            &self.depth,
            self.virtual_exit,
            self.virtual_exit,
            edits,
        )
    }

    /// The immediate post-dominator of `b`; `None` means the virtual exit
    /// (i.e. the function return).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(v) if v != self.virtual_exit => Some(BlockId::new(v)),
            _ => None,
        }
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let (a, mut b) = (a.index(), b.index());
        if self.depth[a] == u32::MAX || self.depth[b] == u32::MAX {
            return false;
        }
        while self.depth[b] > self.depth[a] {
            b = self.idom[b].expect("depth > 0 implies idom");
        }
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Function, IcmpPred, Type, Value};

    /// entry -> {t, e}; t -> x; e -> x; x -> ret
    fn diamond() -> (Function, Vec<BlockId>) {
        let mut f = Function::new("d", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    /// Nested diamond on the true side:
    /// entry -> {a, e}; a -> {b, c}; b -> m; c -> m; m -> x; e -> x; x ret
    fn nested() -> (Function, Vec<BlockId>) {
        let mut f = Function::new("n", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let a = f.add_block("a");
        let bb = f.add_block("b");
        let c = f.add_block("c");
        let m = f.add_block("m");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c0 = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c0, a, e);
        b.switch_to(a);
        let c1 = b.icmp(IcmpPred::Sgt, Value::Param(0), Value::I32(10));
        b.br(c1, bb, c);
        b.switch_to(bb);
        b.jump(m);
        b.switch_to(c);
        b.jump(m);
        b.switch_to(m);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    #[test]
    fn diamond_dominators() {
        let (f, ids) = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(t), Some(entry));
        assert_eq!(dt.idom(e), Some(entry));
        assert_eq!(dt.idom(x), Some(entry));
        assert!(dt.dominates(entry, x));
        assert!(!dt.dominates(t, x));
        assert!(dt.dominates(t, t));
        assert!(dt.strictly_dominates(entry, t));
        assert!(!dt.strictly_dominates(t, t));
    }

    #[test]
    fn diamond_post_dominators() {
        let (f, ids) = diamond();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(pdt.ipdom(entry), Some(x));
        assert_eq!(pdt.ipdom(t), Some(x));
        assert_eq!(pdt.ipdom(e), Some(x));
        assert_eq!(pdt.ipdom(x), None);
        assert!(pdt.post_dominates(x, entry));
        assert!(!pdt.post_dominates(t, entry));
        assert!(!pdt.post_dominates(t, e));
        assert!(!pdt.post_dominates(e, t));
    }

    #[test]
    fn nested_ipdom_chain() {
        let (f, ids) = nested();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let (_entry, a, _b, _c, m, _e, x) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        assert_eq!(pdt.ipdom(a), Some(m));
        assert_eq!(pdt.ipdom(m), Some(x));
    }

    #[test]
    fn dominance_frontiers_of_diamond() {
        let (f, ids) = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let df = dt.dominance_frontiers(&cfg);
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(df[t.index()], vec![x]);
        assert_eq!(df[e.index()], vec![x]);
        assert!(df[entry.index()].is_empty());
        assert!(df[x.index()].is_empty());
    }

    #[test]
    fn idf_of_branch_successors_is_join() {
        let (f, ids) = nested();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let (bb, c, m) = (ids[2], ids[3], ids[4]);
        // Values merging at m can merge again at x (where m's path joins e's),
        // so the iterated frontier is {m, x}.
        let idf = dt.iterated_dominance_frontier(&cfg, &[bb, c]);
        assert_eq!(idf, vec![m, ids[6]]);
        // outer branch successors join at x
        let (a, e, x) = (ids[1], ids[5], ids[6]);
        let idf2 = dt.iterated_dominance_frontier(&cfg, &[a, e]);
        assert_eq!(idf2, vec![x]);
    }

    #[test]
    fn loop_post_dominators() {
        // entry -> h; h -> {body, exit}; body -> h
        let mut f = Function::new("l", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let h = f.add_block("h");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.jump(h);
        b.switch_to(h);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let dt = DomTree::new(&f, &cfg);
        assert_eq!(pdt.ipdom(h), Some(exit));
        assert_eq!(pdt.ipdom(body), Some(h));
        assert_eq!(dt.idom(body), Some(h));
        assert!(dt.dominates(h, body));
    }
}
