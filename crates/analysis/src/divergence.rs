//! SIMT divergence analysis.
//!
//! Determines which values differ across the threads of a warp and which
//! branches therefore diverge. Follows the structure of LLVM's divergence
//! analysis (Karrenberg & Hack, CC'12), which the paper uses to detect
//! divergent branches (§II-B, §IV-B):
//!
//! * **Roots**: the thread index `tid.x`/`tid.y` (block/grid intrinsics and
//!   kernel parameters are uniform across a block).
//! * **Data dependence**: any instruction with a divergent operand is
//!   divergent. In particular a load from a divergent address yields a
//!   divergent value — this is how data-dependent branching (mergesort, PCM,
//!   DCT) becomes divergent.
//! * **Sync dependence**: a φ-node at a join point of a divergent branch is
//!   divergent even when all incoming values are uniform, because *which*
//!   incoming value arrives depends on the thread's path. Join points are
//!   the iterated dominance frontier of the branch's successors.

use crate::cfg::Cfg;
use crate::dom::{DomTree, PostDomTree};
use darm_ir::{BlockId, Function, InstId, Opcode, Value};

/// Result of divergence analysis over one function.
#[derive(Debug, Clone)]
pub struct DivergenceAnalysis {
    div_inst: Vec<bool>,
    div_branch_block: Vec<bool>,
}

impl DivergenceAnalysis {
    /// Runs the analysis, computing the CFG and dominator tree internally.
    pub fn new(func: &Function) -> DivergenceAnalysis {
        let cfg = Cfg::new(func);
        let dt = DomTree::new(func, &cfg);
        DivergenceAnalysis::run(func, &cfg, &dt)
    }

    /// Join points of a divergent branch at `bb`: the IDF of its successors
    /// restricted to blocks the paths can reach before (or at) the branch's
    /// IPDOM. `df` is the precomputed dominance-frontier table, shared
    /// across every divergent branch of one analysis run.
    fn branch_joins(
        df: &[Vec<BlockId>],
        pdt: &PostDomTree,
        bb: BlockId,
        succs: &[BlockId],
    ) -> Vec<BlockId> {
        let idf = DomTree::iterated_frontier_from(df, succs);
        match pdt.ipdom(bb) {
            Some(x) => idf
                .into_iter()
                .filter(|&j| j == x || pdt.post_dominates(x, j))
                .collect(),
            None => idf,
        }
    }

    /// Runs the analysis with caller-provided CFG and dominator tree,
    /// computing the post-dominator tree privately. Prefer
    /// [`DivergenceAnalysis::run_with_pdt`] when a cached tree exists.
    pub fn run(func: &Function, cfg: &Cfg, dt: &DomTree) -> DivergenceAnalysis {
        let pdt = PostDomTree::new(func, cfg);
        DivergenceAnalysis::run_with_pdt(func, cfg, dt, &pdt)
    }

    /// The pass-manager-refactor-era implementation, kept verbatim as the
    /// differential baseline for compile-time benchmarks: recomputes the
    /// post-dominator tree privately and builds the use map as
    /// per-definition `Vec`s instead of compressed sparse rows. Produces a
    /// result identical to [`DivergenceAnalysis::run_with_pdt`].
    pub fn run_pr2_baseline(func: &Function, cfg: &Cfg, dt: &DomTree) -> DivergenceAnalysis {
        let pdt = PostDomTree::new(func, cfg);
        let mut div_inst = vec![false; func.inst_capacity()];
        let mut div_branch_block = vec![false; func.block_capacity()];

        // Use map: inst -> instructions using its result.
        let mut users: Vec<Vec<InstId>> = vec![Vec::new(); func.inst_capacity()];
        for b in func.block_ids() {
            for &id in func.insts_of(b) {
                for &op in &func.inst(id).operands {
                    if let Value::Inst(dep) = op {
                        users[dep.index()].push(id);
                    }
                }
            }
        }

        let mut work: Vec<InstId> = Vec::new();
        for b in func.block_ids() {
            for &id in func.insts_of(b) {
                if matches!(func.inst(id).opcode, Opcode::ThreadIdx(_)) {
                    div_inst[id.index()] = true;
                    work.push(id);
                }
            }
        }

        // Per-branch join sets are computed lazily and cached.
        let mut joins_cache: std::collections::HashMap<usize, Vec<BlockId>> =
            std::collections::HashMap::new();

        while let Some(id) = work.pop() {
            // Propagate data dependence to users.
            for &u in &users[id.index()] {
                if !div_inst[u.index()]
                    && !matches!(func.inst(u).opcode, Opcode::Br | Opcode::Jump | Opcode::Ret)
                {
                    div_inst[u.index()] = true;
                    work.push(u);
                }
            }
            // Sync dependence: a conditional branch using this value diverges.
            for &u in &users[id.index()] {
                let inst = func.inst(u);
                if inst.opcode != Opcode::Br {
                    continue;
                }
                let bb = inst.block;
                if div_branch_block[bb.index()] {
                    continue;
                }
                div_branch_block[bb.index()] = true;
                let joins = joins_cache.entry(bb.index()).or_insert_with(|| {
                    // Frontiers recomputed per branch, as the era did.
                    let succs: Vec<BlockId> = inst.succs.clone();
                    let idf = dt.iterated_dominance_frontier(cfg, &succs);
                    match pdt.ipdom(bb) {
                        Some(x) => idf
                            .into_iter()
                            .filter(|&j| j == x || pdt.post_dominates(x, j))
                            .collect(),
                        None => idf,
                    }
                });
                for &j in joins.iter() {
                    for phi in func.phis_of(j) {
                        if !div_inst[phi.index()] {
                            div_inst[phi.index()] = true;
                            work.push(phi);
                        }
                    }
                }
            }
        }

        DivergenceAnalysis {
            div_inst,
            div_branch_block,
        }
    }

    /// Runs the analysis with every control-flow analysis caller-provided
    /// (the form the [`AnalysisManager`](crate::AnalysisManager) uses, so
    /// one cached post-dominator tree serves detection *and* divergence).
    ///
    /// The engine is a forward-sweep fixpoint over the instruction stream:
    /// each sweep marks an instruction divergent when a root or a
    /// divergent operand reaches it and folds sync dependence in as
    /// branches turn divergent (joins via a dominance-frontier table
    /// computed at most once per run). SSA definitions mostly precede
    /// their uses in the sweep order, so the fixpoint lands in two or
    /// three sweeps without materializing a def→users map — the same least
    /// fixpoint the use-map worklist reaches, allocation-free.
    pub fn run_with_pdt(
        func: &Function,
        cfg: &Cfg,
        dt: &DomTree,
        pdt: &PostDomTree,
    ) -> DivergenceAnalysis {
        let mut div_inst = vec![false; func.inst_capacity()];
        let mut div_branch_block = vec![false; func.block_capacity()];
        let blocks = func.block_ids();
        let mut frontiers: Option<Vec<Vec<BlockId>>> = None;
        loop {
            let mut changed = false;
            for &b in &blocks {
                for &id in func.insts_of(b) {
                    if div_inst[id.index()] {
                        continue;
                    }
                    let inst = func.inst(id);
                    let divergent = match inst.opcode {
                        Opcode::ThreadIdx(_) => true,
                        Opcode::Br | Opcode::Jump | Opcode::Ret => false,
                        _ => inst
                            .operands
                            .iter()
                            .any(|&op| matches!(op, Value::Inst(dep) if div_inst[dep.index()])),
                    };
                    if divergent {
                        div_inst[id.index()] = true;
                        changed = true;
                    }
                }
                // Sync dependence: a branch on a divergent value diverges,
                // making the φs at its join points divergent too.
                if div_branch_block[b.index()] {
                    continue;
                }
                let Some(t) = func.terminator(b) else {
                    continue;
                };
                let inst = func.inst(t);
                if inst.opcode != Opcode::Br {
                    continue;
                }
                let Value::Inst(cond) = inst.operands[0] else {
                    continue;
                };
                if !div_inst[cond.index()] {
                    continue;
                }
                div_branch_block[b.index()] = true;
                changed = true;
                let df = frontiers.get_or_insert_with(|| dt.dominance_frontiers(cfg));
                let joins = DivergenceAnalysis::branch_joins(df, pdt, b, &inst.succs);
                for &j in joins.iter() {
                    for phi in func.phis_of(j) {
                        if !div_inst[phi.index()] {
                            div_inst[phi.index()] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        DivergenceAnalysis {
            div_inst,
            div_branch_block,
        }
    }

    /// Whether a value may differ across the threads of a warp.
    pub fn is_value_divergent(&self, v: Value) -> bool {
        match v {
            Value::Inst(id) => self.div_inst.get(id.index()).copied().unwrap_or(false),
            // Kernel parameters and constants are uniform across the launch.
            _ => false,
        }
    }

    /// Whether the instruction's result is divergent.
    pub fn is_inst_divergent(&self, id: InstId) -> bool {
        self.div_inst.get(id.index()).copied().unwrap_or(false)
    }

    /// Whether `b` ends in a divergent conditional branch.
    pub fn is_divergent_branch(&self, b: BlockId) -> bool {
        self.div_branch_block
            .get(b.index())
            .copied()
            .unwrap_or(false)
    }

    /// All blocks ending in divergent conditional branches.
    pub fn divergent_branch_blocks(&self) -> Vec<BlockId> {
        self.div_branch_block
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(BlockId::new(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{AddrSpace, Dim, IcmpPred, Type};

    #[test]
    fn tid_branch_is_divergent_uniform_is_not() {
        // entry: br (tid < arg0)  -- divergent
        // t:     br (arg0 < 5)    -- uniform
        let mut f = Function::new("k", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let t2 = f.add_block("t2");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.param(0));
        b.br(c, t, x);
        b.switch_to(t);
        let c2 = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(5));
        b.br(c2, t2, x);
        b.switch_to(t2);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        let da = DivergenceAnalysis::new(&f);
        assert!(da.is_divergent_branch(entry));
        assert!(!da.is_divergent_branch(t));
        assert!(da.is_value_divergent(tid));
        assert!(da.is_value_divergent(c));
        assert!(!da.is_value_divergent(c2));
    }

    #[test]
    fn divergent_load_propagates() {
        // v = load (p + tid); br (v < 0)  -- data-dependent divergence
        let mut f = Function::new("k", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let p = b.gep(Type::I32, b.param(0), tid);
        let v = b.load(Type::I32, p);
        let c = b.icmp(IcmpPred::Slt, v, b.const_i32(0));
        b.br(c, t, x);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        let da = DivergenceAnalysis::new(&f);
        assert!(da.is_value_divergent(v));
        assert!(da.is_divergent_branch(entry));
    }

    #[test]
    fn uniform_load_stays_uniform() {
        let mut f = Function::new("k", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let v = b.load(Type::I32, b.param(0));
        let c = b.icmp(IcmpPred::Slt, v, b.const_i32(0));
        b.br(c, t, x);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        let da = DivergenceAnalysis::new(&f);
        assert!(!da.is_value_divergent(v));
        assert!(!da.is_divergent_branch(entry));
    }

    #[test]
    fn sync_dependent_phi_is_divergent() {
        // if (tid < n) a = 1 else a = 2; phi at join is divergent even though
        // both incomings are constants.
        let mut f = Function::new("k", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.param(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let phi = b.phi(Type::I32, &[(t, Value::I32(1)), (e, Value::I32(2))]);
        b.ret(Some(phi));
        use darm_ir::Value;

        let da = DivergenceAnalysis::new(&f);
        assert!(da.is_value_divergent(phi));
    }

    #[test]
    fn uniform_branch_phi_stays_uniform() {
        let mut f = Function::new("k", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(3));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let phi = b.phi(Type::I32, &[(t, Value::I32(1)), (e, Value::I32(2))]);
        b.ret(Some(phi));
        use darm_ir::Value;

        let da = DivergenceAnalysis::new(&f);
        assert!(!da.is_value_divergent(phi));
    }
}
