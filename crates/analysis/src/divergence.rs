//! SIMT divergence analysis.
//!
//! Determines which values differ across the threads of a warp and which
//! branches therefore diverge. Follows the structure of LLVM's divergence
//! analysis (Karrenberg & Hack, CC'12), which the paper uses to detect
//! divergent branches (§II-B, §IV-B):
//!
//! * **Roots**: the thread index `tid.x`/`tid.y` (block/grid intrinsics and
//!   kernel parameters are uniform across a block).
//! * **Data dependence**: any instruction with a divergent operand is
//!   divergent. In particular a load from a divergent address yields a
//!   divergent value — this is how data-dependent branching (mergesort, PCM,
//!   DCT) becomes divergent.
//! * **Sync dependence**: a φ-node at a join point of a divergent branch is
//!   divergent even when all incoming values are uniform, because *which*
//!   incoming value arrives depends on the thread's path. Join points are
//!   the iterated dominance frontier of the branch's successors.

use crate::cfg::Cfg;
use crate::dom::{DomTree, PostDomTree};
use darm_ir::{BlockId, Function, InstId, Opcode, Value};

/// Reusable buffers for [`DivergenceAnalysis::refresh_window`]. A refresh
/// runs once per analysis-cache reconciliation — several times per meld
/// fixpoint — and on paper-sized kernels its dozen working vectors cost
/// more to allocate than to fill, so they live here between calls.
#[derive(Default)]
struct RefreshScratch {
    offsets: Vec<u32>,
    fill: Vec<u32>,
    users: Vec<InstId>,
    in_c: Vec<bool>,
    c_list: Vec<InstId>,
    queue: Vec<InstId>,
    branch_seen: Vec<bool>,
    new_joins: Vec<Option<Vec<BlockId>>>,
    reset_blocks: Vec<BlockId>,
    work: Vec<InstId>,
    c_branches: Vec<InstId>,
}

thread_local! {
    static REFRESH_SCRATCH: std::cell::RefCell<RefreshScratch> =
        std::cell::RefCell::new(RefreshScratch::default());
}

/// Result of divergence analysis over one function.
#[derive(Debug, Clone)]
pub struct DivergenceAnalysis {
    div_inst: Vec<bool>,
    div_branch_block: Vec<bool>,
    /// Join blocks per divergent branch (indexed by branch block),
    /// recorded by [`DivergenceAnalysis::run_with_pdt`] so incremental
    /// refreshes can undo or re-apply a branch's sync contribution
    /// without recomputing dominance frontiers. Invariant: for every
    /// divergent branch the stored set equals `branch_joins` under the
    /// CFG shape the result was last validated against; non-divergent
    /// branches store an empty set. `None` on results from the frozen
    /// PR 2 baseline, which never refreshes.
    joins: Option<Vec<Vec<BlockId>>>,
}

impl DivergenceAnalysis {
    /// Runs the analysis, computing the CFG and dominator tree internally.
    pub fn new(func: &Function) -> DivergenceAnalysis {
        let cfg = Cfg::new(func);
        let dt = DomTree::new(func, &cfg);
        DivergenceAnalysis::run(func, &cfg, &dt)
    }

    /// Join points of a divergent branch at `bb`: the IDF of its successors
    /// restricted to blocks the paths can reach before (or at) the branch's
    /// IPDOM. `df` is the precomputed dominance-frontier table, shared
    /// across every divergent branch of one analysis run.
    fn branch_joins(
        df: &[Vec<BlockId>],
        pdt: &PostDomTree,
        bb: BlockId,
        succs: &[BlockId],
    ) -> Vec<BlockId> {
        let idf = DomTree::iterated_frontier_from(df, succs);
        match pdt.ipdom(bb) {
            Some(x) => idf
                .into_iter()
                .filter(|&j| j == x || pdt.post_dominates(x, j))
                .collect(),
            None => idf,
        }
    }

    /// Runs the analysis with caller-provided CFG and dominator tree,
    /// computing the post-dominator tree privately. Prefer
    /// [`DivergenceAnalysis::run_with_pdt`] when a cached tree exists.
    pub fn run(func: &Function, cfg: &Cfg, dt: &DomTree) -> DivergenceAnalysis {
        let pdt = PostDomTree::new(func, cfg);
        DivergenceAnalysis::run_with_pdt(func, cfg, dt, &pdt)
    }

    /// The pass-manager-refactor-era implementation, kept verbatim as the
    /// differential baseline for compile-time benchmarks: recomputes the
    /// post-dominator tree privately and builds the use map as
    /// per-definition `Vec`s instead of compressed sparse rows. Produces a
    /// result identical to [`DivergenceAnalysis::run_with_pdt`].
    pub fn run_pr2_baseline(func: &Function, cfg: &Cfg, dt: &DomTree) -> DivergenceAnalysis {
        let pdt = PostDomTree::new(func, cfg);
        let mut div_inst = vec![false; func.inst_capacity()];
        let mut div_branch_block = vec![false; func.block_capacity()];

        // Use map: inst -> instructions using its result.
        let mut users: Vec<Vec<InstId>> = vec![Vec::new(); func.inst_capacity()];
        for b in func.block_ids() {
            for &id in func.insts_of(b) {
                for &op in &func.inst(id).operands {
                    if let Value::Inst(dep) = op {
                        users[dep.index()].push(id);
                    }
                }
            }
        }

        let mut work: Vec<InstId> = Vec::new();
        for b in func.block_ids() {
            for &id in func.insts_of(b) {
                if matches!(func.inst(id).opcode, Opcode::ThreadIdx(_)) {
                    div_inst[id.index()] = true;
                    work.push(id);
                }
            }
        }

        // Per-branch join sets are computed lazily and cached.
        let mut joins_cache: std::collections::HashMap<usize, Vec<BlockId>> =
            std::collections::HashMap::new();

        while let Some(id) = work.pop() {
            // Propagate data dependence to users.
            for &u in &users[id.index()] {
                if !div_inst[u.index()]
                    && !matches!(func.inst(u).opcode, Opcode::Br | Opcode::Jump | Opcode::Ret)
                {
                    div_inst[u.index()] = true;
                    work.push(u);
                }
            }
            // Sync dependence: a conditional branch using this value diverges.
            for &u in &users[id.index()] {
                let inst = func.inst(u);
                if inst.opcode != Opcode::Br {
                    continue;
                }
                let bb = inst.block;
                if div_branch_block[bb.index()] {
                    continue;
                }
                div_branch_block[bb.index()] = true;
                let joins = joins_cache.entry(bb.index()).or_insert_with(|| {
                    // Frontiers recomputed per branch, as the era did.
                    let succs: Vec<BlockId> = inst.succs.clone();
                    let idf = dt.iterated_dominance_frontier(cfg, &succs);
                    match pdt.ipdom(bb) {
                        Some(x) => idf
                            .into_iter()
                            .filter(|&j| j == x || pdt.post_dominates(x, j))
                            .collect(),
                        None => idf,
                    }
                });
                for &j in joins.iter() {
                    for phi in func.phis_of(j) {
                        if !div_inst[phi.index()] {
                            div_inst[phi.index()] = true;
                            work.push(phi);
                        }
                    }
                }
            }
        }

        DivergenceAnalysis {
            div_inst,
            div_branch_block,
            joins: None,
        }
    }

    /// Runs the analysis with every control-flow analysis caller-provided
    /// (the form the [`AnalysisManager`](crate::AnalysisManager) uses, so
    /// one cached post-dominator tree serves detection *and* divergence).
    ///
    /// The engine is a forward-sweep fixpoint over the instruction stream:
    /// each sweep marks an instruction divergent when a root or a
    /// divergent operand reaches it and folds sync dependence in as
    /// branches turn divergent (joins via a dominance-frontier table
    /// computed at most once per run). SSA definitions mostly precede
    /// their uses in the sweep order, so the fixpoint lands in two or
    /// three sweeps without materializing a def→users map — the same least
    /// fixpoint the use-map worklist reaches, allocation-free.
    pub fn run_with_pdt(
        func: &Function,
        cfg: &Cfg,
        dt: &DomTree,
        pdt: &PostDomTree,
    ) -> DivergenceAnalysis {
        let mut div_inst = vec![false; func.inst_capacity()];
        let mut div_branch_block = vec![false; func.block_capacity()];
        let mut joins_by_block = vec![Vec::new(); func.block_capacity()];
        let blocks = func.block_ids();
        let mut frontiers: Option<Vec<Vec<BlockId>>> = None;
        loop {
            let mut changed = false;
            for &b in &blocks {
                for &id in func.insts_of(b) {
                    if div_inst[id.index()] {
                        continue;
                    }
                    let inst = func.inst(id);
                    let divergent = match inst.opcode {
                        Opcode::ThreadIdx(_) => true,
                        Opcode::Br | Opcode::Jump | Opcode::Ret => false,
                        _ => inst
                            .operands
                            .iter()
                            .any(|&op| matches!(op, Value::Inst(dep) if div_inst[dep.index()])),
                    };
                    if divergent {
                        div_inst[id.index()] = true;
                        changed = true;
                    }
                }
                // Sync dependence: a branch on a divergent value diverges,
                // making the φs at its join points divergent too.
                if div_branch_block[b.index()] {
                    continue;
                }
                let Some(t) = func.terminator(b) else {
                    continue;
                };
                let inst = func.inst(t);
                if inst.opcode != Opcode::Br {
                    continue;
                }
                let Value::Inst(cond) = inst.operands[0] else {
                    continue;
                };
                if !div_inst[cond.index()] {
                    continue;
                }
                div_branch_block[b.index()] = true;
                changed = true;
                let df = frontiers.get_or_insert_with(|| dt.dominance_frontiers(cfg));
                let joins = DivergenceAnalysis::branch_joins(df, pdt, b, &inst.succs);
                for &j in joins.iter() {
                    for phi in func.phis_of(j) {
                        if !div_inst[phi.index()] {
                            div_inst[phi.index()] = true;
                            changed = true;
                        }
                    }
                }
                joins_by_block[b.index()] = joins;
            }
            if !changed {
                break;
            }
        }
        DivergenceAnalysis {
            div_inst,
            div_branch_block,
            joins: Some(joins_by_block),
        }
    }

    /// Incrementally refreshes this result for one journal window,
    /// returning a result bit-identical to a full recompute over the
    /// current function — or `None` when the window is better served by
    /// recomputing (no stored joins, or the dirty frontier covers more
    /// than half the live instructions).
    ///
    /// `touched` is the deduplicated list of instruction ids the journal
    /// recorded in the window (live and removed — the dead ones drive bit
    /// hygiene); `cfg`/`dt`/`pdt` must already describe the *current*
    /// shape (the manager reconciles them first); `shape_window` says
    /// whether the window contained CFG edits.
    ///
    /// The engine is an exact restricted fixpoint. First a *changed
    /// closure* `C` is grown over the def→use graph from the window's
    /// dirty seeds, with one extra closure rule for sync dependence:
    /// when a conditional branch lands in `C`, the φs of its join
    /// blocks — under the old shape (stored) *and* the new shape
    /// (recomputed, or the stored set again on instruction-only
    /// windows) — land in `C` too. In a shape window every previously
    /// divergent branch is forced into `C`, because its join set may
    /// have changed even if its condition did not. Everything outside
    /// `C` provably has an unchanged equation over unchanged inputs, so
    /// its old bit is a fixed boundary; bits inside `C` are reset and
    /// re-derived by the same rules the full run uses. The combined
    /// assignment satisfies every equation, and a monotone system has
    /// one least fixpoint — the full run's.
    pub fn refresh_window(
        &self,
        func: &Function,
        cfg: &Cfg,
        dt: &DomTree,
        pdt: &PostDomTree,
        touched: &[InstId],
        shape_window: bool,
    ) -> Option<DivergenceAnalysis> {
        let joins_old = self.joins.as_ref()?;
        let icap = func.inst_capacity();
        let bcap = func.block_capacity();
        // Seeds are the *touched* live instructions only — not every
        // instruction of every dirty block (`DirtyDelta::seed_insts`),
        // which after meld surgery is the whole melded region. That
        // coarser set is right for transforms that rescan by block, but
        // a divergence equation reads nothing block-level: an untouched
        // instruction's equation is unchanged, and a changed *input bit*
        // reaches it through the def→use closure below. The journal
        // already extends touches to RAUW-reached users and the operand
        // definitions of removed instructions.
        let live_seeds = touched.iter().filter(|&&id| func.is_inst_alive(id)).count();
        if live_seeds * 2 > func.live_inst_count() {
            return None; // meld-surgery-sized frontier: recompute wins
        }

        let RefreshScratch {
            mut offsets,
            mut fill,
            mut users,
            mut in_c,
            mut c_list,
            mut queue,
            mut branch_seen,
            mut new_joins,
            mut reset_blocks,
            mut work,
            mut c_branches,
        } = REFRESH_SCRATCH.with(|c| std::mem::take(&mut *c.borrow_mut()));

        // def→users over the live stream, compressed sparse rows.
        // Terminators are included, so a condition in C pulls its
        // branch into C as an ordinary user.
        let blocks = func.block_ids();
        offsets.clear();
        offsets.resize(icap + 1, 0);
        for &b in &blocks {
            for &id in func.insts_of(b) {
                for &op in &func.inst(id).operands {
                    if let Value::Inst(dep) = op {
                        offsets[dep.index() + 1] += 1;
                    }
                }
            }
        }
        for i in 0..icap {
            offsets[i + 1] += offsets[i];
        }
        fill.clear();
        fill.extend_from_slice(&offsets);
        users.clear();
        users.resize(offsets[icap] as usize, InstId::new(0));
        for &b in &blocks {
            for &id in func.insts_of(b) {
                for &op in &func.inst(id).operands {
                    if let Value::Inst(dep) = op {
                        users[fill[dep.index()] as usize] = id;
                        fill[dep.index()] += 1;
                    }
                }
            }
        }
        let users_of = |id: InstId| &users[offsets[id.index()] as usize..fill[id.index()] as usize];

        // --- Closure phase: grow C from the seeds. ---
        in_c.clear();
        in_c.resize(icap, false);
        c_list.clear();
        queue.clear();
        let push_c = |id: InstId,
                      in_c: &mut Vec<bool>,
                      c_list: &mut Vec<InstId>,
                      queue: &mut Vec<InstId>| {
            if !in_c[id.index()] {
                in_c[id.index()] = true;
                c_list.push(id);
                queue.push(id);
            }
        };
        for &s in touched {
            if func.is_inst_alive(s) {
                push_c(s, &mut in_c, &mut c_list, &mut queue);
            }
        }
        // Join sets under the current shape, memoized per branch block
        // and shared verbatim with the fixpoint phase below — the two
        // phases must agree on each branch's join set.
        let mut frontiers: Option<Vec<Vec<BlockId>>> = None;
        new_joins.clear();
        new_joins.resize(bcap, None);
        // Blocks whose branch status will be re-derived (their flag and
        // stored joins reset below).
        reset_blocks.clear();
        branch_seen.clear();
        branch_seen.resize(bcap, false);
        if shape_window {
            // A surviving divergent branch may have a different join
            // set under the new shape even with an untouched condition:
            // force each one through re-derivation, and feed both its
            // old and new join φs into C.
            for (bi, &flag) in self.div_branch_block.iter().enumerate() {
                if !flag {
                    continue;
                }
                let bb = BlockId::new(bi);
                if func.is_block_alive(bb) {
                    if let Some(t) = func.terminator(bb) {
                        if func.inst(t).opcode == Opcode::Br {
                            push_c(t, &mut in_c, &mut c_list, &mut queue);
                            continue; // closure below handles bb
                        }
                    }
                }
                // The branch is gone (block dead or terminator no
                // longer conditional): clear it and release its old
                // sync contribution for re-derivation.
                branch_seen[bi] = true;
                reset_blocks.push(bb);
                for &j in &joins_old[bi] {
                    if !func.is_block_alive(j) {
                        continue;
                    }
                    for phi in func.phis_of(j) {
                        push_c(phi, &mut in_c, &mut c_list, &mut queue);
                    }
                }
            }
        }
        while let Some(id) = queue.pop() {
            for &u in users_of(id) {
                push_c(u, &mut in_c, &mut c_list, &mut queue);
            }
            let inst = func.inst(id);
            if inst.opcode != Opcode::Br {
                continue;
            }
            // A conditional branch in C: its sync contribution is being
            // re-derived, so the φs it may mark — or may stop marking —
            // join C. Old shape first (stored joins), then new shape.
            let bi = inst.block.index();
            if branch_seen[bi] {
                continue;
            }
            branch_seen[bi] = true;
            reset_blocks.push(inst.block);
            let old_divergent = self.div_branch_block.get(bi).copied().unwrap_or(false);
            if old_divergent {
                for &j in &joins_old[bi] {
                    if !func.is_block_alive(j) {
                        continue;
                    }
                    for phi in func.phis_of(j) {
                        push_c(phi, &mut in_c, &mut c_list, &mut queue);
                    }
                }
            }
            let fresh = if !shape_window && old_divergent {
                // Shape unchanged: the stored set *is* the current one.
                joins_old[bi].clone()
            } else {
                let df = frontiers.get_or_insert_with(|| dt.dominance_frontiers(cfg));
                DivergenceAnalysis::branch_joins(df, pdt, inst.block, &inst.succs)
            };
            for &j in &fresh {
                for phi in func.phis_of(j) {
                    push_c(phi, &mut in_c, &mut c_list, &mut queue);
                }
            }
            new_joins[bi] = Some(fresh);
        }

        // --- Reset phase: bits inside C (and stale dead bits) drop to
        // the lattice bottom; everything else is the fixed boundary. ---
        let mut div_inst = self.div_inst.clone();
        div_inst.resize(icap, false);
        let mut div_branch_block = self.div_branch_block.clone();
        div_branch_block.resize(bcap, false);
        let mut joins = joins_old.clone();
        joins.resize(bcap, Vec::new());
        for &id in &c_list {
            div_inst[id.index()] = false;
        }
        for &bb in &reset_blocks {
            div_branch_block[bb.index()] = false;
            joins[bb.index()] = Vec::new();
        }
        // Bit hygiene for exact equality with fresh arrays: removed
        // instructions and blocks read as uniform.
        for &id in touched {
            if id.index() < icap && !func.is_inst_alive(id) {
                div_inst[id.index()] = false;
            }
        }
        for (bi, flag) in div_branch_block.iter_mut().enumerate() {
            if *flag && !func.is_block_alive(BlockId::new(bi)) {
                *flag = false;
                joins[bi] = Vec::new();
            }
        }

        // --- Fixpoint phase: re-derive C with the boundary fixed. ---
        work.clear();
        let apply_sync = |bb: BlockId,
                          div_branch_block: &mut Vec<bool>,
                          joins: &mut Vec<Vec<BlockId>>,
                          div_inst: &mut Vec<bool>,
                          work: &mut Vec<InstId>| {
            if div_branch_block[bb.index()] {
                return;
            }
            div_branch_block[bb.index()] = true;
            let set = new_joins[bb.index()]
                .clone()
                .expect("closure memoized joins for every branch in C");
            for &j in &set {
                for phi in func.phis_of(j) {
                    if !div_inst[phi.index()] {
                        div_inst[phi.index()] = true;
                        work.push(phi);
                    }
                }
            }
            joins[bb.index()] = set;
        };
        c_branches.clear();
        for &id in &c_list {
            if !func.is_inst_alive(id) {
                continue;
            }
            let inst = func.inst(id);
            let divergent = match inst.opcode {
                Opcode::ThreadIdx(_) => true,
                Opcode::Br => {
                    c_branches.push(id);
                    false
                }
                Opcode::Jump | Opcode::Ret => false,
                _ => inst
                    .operands
                    .iter()
                    .any(|&op| matches!(op, Value::Inst(dep) if div_inst[dep.index()])),
            };
            if divergent && !div_inst[id.index()] {
                div_inst[id.index()] = true;
                work.push(id);
            }
        }
        // Divergent branches *outside* C keep their flag and joins; φs
        // of those joins that landed in C were just reset and need the
        // standing sync mark re-applied.
        for (bi, flag) in div_branch_block.iter().enumerate() {
            if !*flag {
                continue;
            }
            for &j in &joins[bi] {
                if !func.is_block_alive(j) {
                    continue;
                }
                for phi in func.phis_of(j) {
                    if in_c[phi.index()] && !div_inst[phi.index()] {
                        div_inst[phi.index()] = true;
                        work.push(phi);
                    }
                }
            }
        }
        // Branches in C whose condition is already divergent (marked
        // above, or held divergent by the boundary outside C).
        for &t in &c_branches {
            let inst = func.inst(t);
            if let Some(&Value::Inst(cond)) = inst.operands.first() {
                if div_inst[cond.index()] {
                    apply_sync(
                        inst.block,
                        &mut div_branch_block,
                        &mut joins,
                        &mut div_inst,
                        &mut work,
                    );
                }
            }
        }
        while let Some(id) = work.pop() {
            for &u in users_of(id) {
                if !in_c[u.index()] || div_inst[u.index()] {
                    continue;
                }
                match func.inst(u).opcode {
                    Opcode::Br | Opcode::Jump | Opcode::Ret => {}
                    _ => {
                        div_inst[u.index()] = true;
                        work.push(u);
                    }
                }
            }
            for &u in users_of(id) {
                let inst = func.inst(u);
                if inst.opcode == Opcode::Br
                    && in_c[u.index()]
                    && inst.operands.first() == Some(&Value::Inst(id))
                {
                    apply_sync(
                        inst.block,
                        &mut div_branch_block,
                        &mut joins,
                        &mut div_inst,
                        &mut work,
                    );
                }
            }
        }

        REFRESH_SCRATCH.with(|c| {
            *c.borrow_mut() = RefreshScratch {
                offsets,
                fill,
                users,
                in_c,
                c_list,
                queue,
                branch_seen,
                new_joins,
                reset_blocks,
                work,
                c_branches,
            };
        });
        Some(DivergenceAnalysis {
            div_inst,
            div_branch_block,
            joins: Some(joins),
        })
    }

    /// Whether a value may differ across the threads of a warp.
    pub fn is_value_divergent(&self, v: Value) -> bool {
        match v {
            Value::Inst(id) => self.div_inst.get(id.index()).copied().unwrap_or(false),
            // Kernel parameters and constants are uniform across the launch.
            _ => false,
        }
    }

    /// Whether the instruction's result is divergent.
    pub fn is_inst_divergent(&self, id: InstId) -> bool {
        self.div_inst.get(id.index()).copied().unwrap_or(false)
    }

    /// Whether `b` ends in a divergent conditional branch.
    pub fn is_divergent_branch(&self, b: BlockId) -> bool {
        self.div_branch_block
            .get(b.index())
            .copied()
            .unwrap_or(false)
    }

    /// All blocks ending in divergent conditional branches.
    pub fn divergent_branch_blocks(&self) -> Vec<BlockId> {
        self.div_branch_block
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(BlockId::new(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{AddrSpace, Dim, IcmpPred, Type};

    #[test]
    fn tid_branch_is_divergent_uniform_is_not() {
        // entry: br (tid < arg0)  -- divergent
        // t:     br (arg0 < 5)    -- uniform
        let mut f = Function::new("k", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let t2 = f.add_block("t2");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.param(0));
        b.br(c, t, x);
        b.switch_to(t);
        let c2 = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(5));
        b.br(c2, t2, x);
        b.switch_to(t2);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        let da = DivergenceAnalysis::new(&f);
        assert!(da.is_divergent_branch(entry));
        assert!(!da.is_divergent_branch(t));
        assert!(da.is_value_divergent(tid));
        assert!(da.is_value_divergent(c));
        assert!(!da.is_value_divergent(c2));
    }

    #[test]
    fn divergent_load_propagates() {
        // v = load (p + tid); br (v < 0)  -- data-dependent divergence
        let mut f = Function::new("k", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let p = b.gep(Type::I32, b.param(0), tid);
        let v = b.load(Type::I32, p);
        let c = b.icmp(IcmpPred::Slt, v, b.const_i32(0));
        b.br(c, t, x);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        let da = DivergenceAnalysis::new(&f);
        assert!(da.is_value_divergent(v));
        assert!(da.is_divergent_branch(entry));
    }

    #[test]
    fn uniform_load_stays_uniform() {
        let mut f = Function::new("k", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let v = b.load(Type::I32, b.param(0));
        let c = b.icmp(IcmpPred::Slt, v, b.const_i32(0));
        b.br(c, t, x);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        let da = DivergenceAnalysis::new(&f);
        assert!(!da.is_value_divergent(v));
        assert!(!da.is_divergent_branch(entry));
    }

    #[test]
    fn sync_dependent_phi_is_divergent() {
        // if (tid < n) a = 1 else a = 2; phi at join is divergent even though
        // both incomings are constants.
        let mut f = Function::new("k", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.param(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let phi = b.phi(Type::I32, &[(t, Value::I32(1)), (e, Value::I32(2))]);
        b.ret(Some(phi));
        use darm_ir::Value;

        let da = DivergenceAnalysis::new(&f);
        assert!(da.is_value_divergent(phi));
    }

    #[test]
    fn uniform_branch_phi_stays_uniform() {
        let mut f = Function::new("k", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(3));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let phi = b.phi(Type::I32, &[(t, Value::I32(1)), (e, Value::I32(2))]);
        b.ret(Some(phi));
        use darm_ir::Value;

        let da = DivergenceAnalysis::new(&f);
        assert!(!da.is_value_divergent(phi));
    }
}
