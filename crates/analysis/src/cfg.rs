//! Control-flow graph views: predecessors, successors, traversal orders.

use darm_ir::{BlockId, CfgEdit, Function};

/// A snapshot of a function's CFG structure.
///
/// Invalidated by any transformation that adds/removes blocks or edges —
/// but usually repairable in place: [`Cfg::try_update`] splices the RPO
/// below the DFS-tree anchor of an edit window and patches `preds`/
/// `succs` locally, producing a snapshot bit-identical to a fresh
/// [`Cfg::new`]. Full recompute remains the fallback when the anchor
/// covers too much of the graph or the window resists local reasoning.
#[derive(Debug, Clone)]
pub struct Cfg {
    entry: BlockId,
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<usize>,
    /// DFS discovery number per block (`usize::MAX` if unreachable).
    /// Subtrees of the DFS tree occupy contiguous discovery ranges,
    /// which is what lets [`Cfg::try_update`] splice locally.
    disc: Vec<usize>,
    /// DFS-tree parent per block (`usize::MAX` for the entry and
    /// unreachable blocks); with `disc` this answers NCA queries.
    parent: Vec<usize>,
}

impl Cfg {
    /// Computes the CFG of `func`. Predecessor lists only include edges
    /// from blocks reachable from the entry (mirroring LLVM, where
    /// unreachable code does not constrain analyses).
    pub fn new(func: &Function) -> Cfg {
        let cap = func.block_capacity();
        let mut succs = vec![Vec::new(); cap];
        for b in func.block_ids() {
            succs[b.index()] = func.succs(b);
        }
        // Depth-first post-order from the entry, then reverse.
        let entry = func.entry();
        let mut visited = vec![false; cap];
        let mut disc = vec![usize::MAX; cap];
        let mut parent = vec![usize::MAX; cap];
        let mut clock = 0;
        let mut post = Vec::new();
        // Iterative DFS with explicit state (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        disc[entry.index()] = clock;
        clock += 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    disc[s.index()] = clock;
                    clock += 1;
                    parent[s.index()] = b.index();
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_index = vec![usize::MAX; cap];
        for (i, b) in post.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut preds = vec![Vec::new(); cap];
        for &b in &post {
            for &s in &succs[b.index()] {
                preds[s.index()].push(b);
            }
        }
        Cfg {
            entry,
            preds,
            succs,
            rpo: post,
            rpo_index,
            disc,
            parent,
        }
    }

    /// Patches this snapshot in place for a window of raw journal edits,
    /// returning a `Cfg` bit-identical to a fresh [`Cfg::new`] — or
    /// `None` when the window calls for a full rebuild (anchor at the
    /// entry, anchor subtree covering ≥ half the reachable blocks, or a
    /// discovery pattern the splice cannot keep local).
    ///
    /// The *raw* event list is required here, not the normalized edit
    /// multiset the dominator trees consume: a rewritten branch that
    /// swaps its targets (`br c, a, b` → `br c2, b, a`) nets to zero
    /// edge changes at the multiset level yet reorders the DFS, and
    /// with it the RPO this snapshot serves.
    ///
    /// Why a local splice is exact: every perturbed source lies in the
    /// old DFS subtree of the anchor `c` (their NCA), so a fresh DFS
    /// unfolds identically until `c` is discovered. `subtree(c)` is a
    /// contiguous run of the old RPO starting at `rpo_index(c)` — the
    /// later-discovered nodes that are *not* in the subtree (later
    /// siblings) sit at earlier RPO positions, and everything after the
    /// run finished before `c` was discovered. Re-running the DFS from
    /// `c` with that "past" pre-seeded as visited reproduces the fresh
    /// subtree; the traversal *after* `c` finishes is also unchanged
    /// provided (a) no spliced node escaped into a later sibling (each
    /// discovery is checked: it must be an old-subtree node or
    /// previously unreachable) and (b) nodes that fell out of the
    /// subtree are unreachable from everything retained (each must have
    /// all predecessors inside the dropped part, else bail).
    pub fn try_update(&self, func: &Function, edits: &[CfgEdit]) -> Option<Cfg> {
        let cap = func.block_capacity();
        // Blocks whose successor lists may differ from this snapshot.
        let mut sources: Vec<usize> = Vec::with_capacity(edits.len());
        for e in edits {
            match *e {
                CfgEdit::BlockAdded(b) | CfgEdit::BlockRemoved(b) => sources.push(b.index()),
                CfgEdit::EdgeInserted(u, _) | CfgEdit::EdgeDeleted(u, _) => sources.push(u.index()),
            }
        }
        sources.sort_unstable();
        sources.dedup();

        let old_disc = |i: usize| self.disc.get(i).copied().unwrap_or(usize::MAX);

        // Anchor: NCA of the old-reachable perturbed sources in the old
        // DFS tree (deeper node = larger discovery number; climb the
        // parent chain). Sources unreachable in the snapshot cannot
        // perturb the old traversal on their own — if an edit links one
        // in, the reachable source of that edit anchors the region.
        let mut anchor: Option<usize> = None;
        for &s in &sources {
            if old_disc(s) == usize::MAX {
                continue;
            }
            anchor = Some(match anchor {
                None => s,
                Some(mut a) => {
                    let mut b = s;
                    while a != b {
                        if self.disc[a] > self.disc[b] {
                            a = self.parent[a];
                        } else {
                            b = self.parent[b];
                        }
                        if a == usize::MAX || b == usize::MAX {
                            return None;
                        }
                    }
                    a
                }
            });
        }

        // All the cheap bail-outs run *before* the snapshot clone below —
        // a declined splice (entry anchor, oversized subtree) must cost
        // sources + an NCA climb, not a full copy of the CFG. The meld
        // sweep hits the entry-anchor bail on every single-diamond
        // kernel, so the decline path is as hot as the splice path.
        let seg = match anchor {
            // No old-reachable source: the reachable region's structure
            // is untouched — only fresh (still unlinked) blocks grew
            // the arrays or dead unreachable blocks dropped their lists.
            None => None,
            Some(c) => {
                if c == self.entry.index() || !func.is_block_alive(BlockId::new(c)) {
                    return None;
                }
                let p = self.rpo_index[c];
                let disc_c = self.disc[c];
                // `subtree(c)` is the contiguous RPO run starting at `p`:
                // the run ends at the first entry discovered before `c`.
                let mut k = 1;
                while p + k < self.rpo.len() && self.disc[self.rpo[p + k].index()] >= disc_c {
                    k += 1;
                }
                // Profitability gate (PR 5 shape): an update touching half
                // the graph costs more than the rebuild it replaces.
                if k * 2 >= self.rpo.len() {
                    return None;
                }
                Some((c, p, disc_c, k))
            }
        };

        let mut out = self.clone();
        out.preds.resize(cap, Vec::new());
        out.succs.resize(cap, Vec::new());
        out.rpo_index.resize(cap, usize::MAX);
        out.disc.resize(cap, usize::MAX);
        out.parent.resize(cap, usize::MAX);
        // Refill successor lists of every perturbed source from the
        // function; tombstoned blocks lose theirs.
        for &s in &sources {
            let b = BlockId::new(s);
            out.succs[s] = if func.is_block_alive(b) {
                func.succs(b)
            } else {
                Vec::new()
            };
        }

        let Some((c, p, disc_c, k)) = seg else {
            return Some(out);
        };
        let in_old_seg = |i: usize| {
            old_disc(i) != usize::MAX
                && old_disc(i) >= disc_c
                && self.rpo_index.get(i).copied().unwrap_or(usize::MAX) >= p
        };

        // Re-run the DFS from `c` over the patched successor lists with
        // the past pre-seeded: everything discovered before `c` is
        // discovered identically by a fresh run.
        let mut visited = vec![false; cap];
        for (i, v) in visited.iter_mut().enumerate() {
            let d = old_disc(i);
            if d != usize::MAX && d < disc_c {
                *v = true;
            }
        }
        let mut seg_post: Vec<BlockId> = Vec::with_capacity(k);
        let mut in_new_seg = vec![false; cap];
        let cb = BlockId::new(c);
        let mut stack: Vec<(BlockId, usize)> = vec![(cb, 0)];
        visited[c] = true;
        in_new_seg[c] = true;
        out.disc[c] = disc_c;
        let mut clock = disc_c + 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < out.succs[b.index()].len() {
                let s = out.succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    // A discovery must be an old-subtree node or a block
                    // that was unreachable; reaching any other node (an
                    // old later sibling, discovered only after `c`
                    // finished) would perturb the RPO prefix we keep.
                    if old_disc(s.index()) != usize::MAX && !in_old_seg(s.index()) {
                        return None;
                    }
                    visited[s.index()] = true;
                    in_new_seg[s.index()] = true;
                    out.disc[s.index()] = clock;
                    clock += 1;
                    out.parent[s.index()] = b.index();
                    stack.push((s, 0));
                }
            } else {
                seg_post.push(b);
                stack.pop();
            }
        }
        let k_new = seg_post.len();

        // Nodes that fell out of the subtree must be unreachable from
        // everything retained: every old predecessor has to sit in the
        // dropped part itself. A surviving predecessor elsewhere (or a
        // deleted edge from a node the new subtree kept) means the
        // local argument no longer covers them — bail to a rebuild.
        for idx in p..p + k {
            let v = self.rpo[idx].index();
            if in_new_seg[v] {
                continue;
            }
            for &pd in &self.preds[v] {
                if !in_old_seg(pd.index()) || in_new_seg[pd.index()] {
                    return None;
                }
            }
        }

        // Splice the RPO: prefix ‖ new subtree ‖ suffix.
        let mut rpo = Vec::with_capacity(self.rpo.len() - k + k_new);
        rpo.extend_from_slice(&self.rpo[..p]);
        rpo.extend(seg_post.iter().rev().copied());
        rpo.extend_from_slice(&self.rpo[p + k..]);
        // Renumber discovery: the prefix (disc < disc_c) is untouched,
        // the new subtree took `disc_c..disc_c + k_new` during the walk,
        // later discoveries (old disc ≥ disc_c + k) shift by the size
        // change, and dropped nodes go unreachable.
        for (i, &renumbered) in in_new_seg.iter().enumerate().take(cap) {
            if renumbered {
                continue;
            }
            let d = old_disc(i);
            if d == usize::MAX || d < disc_c {
                continue;
            }
            if d < disc_c + k {
                out.disc[i] = usize::MAX;
                out.parent[i] = usize::MAX;
            } else {
                out.disc[i] = d - k + k_new;
            }
        }
        for x in out.rpo_index.iter_mut() {
            *x = usize::MAX;
        }
        for (i, b) in rpo.iter().enumerate() {
            out.rpo_index[b.index()] = i;
        }
        out.rpo = rpo;

        // Rebuild the predecessor lists of every target a spliced edge
        // touches, preserving fresh-build order: a fresh build pushes
        // preds in source-RPO order, so the old list's prefix and
        // suffix contributions survive verbatim around freshly pushed
        // segment entries.
        let mut affected = vec![false; cap];
        let mut targets: Vec<usize> = Vec::new();
        for idx in p..p + k {
            let v = self.rpo[idx].index();
            for &t in &self.succs[v] {
                if !affected[t.index()] {
                    affected[t.index()] = true;
                    targets.push(t.index());
                }
            }
        }
        for b in &seg_post {
            for &t in &out.succs[b.index()] {
                if !affected[t.index()] {
                    affected[t.index()] = true;
                    targets.push(t.index());
                }
            }
        }
        let mut suffixes: Vec<Vec<BlockId>> = Vec::with_capacity(targets.len());
        for &t in &targets {
            let old = self.preds.get(t).map_or(&[][..], |v| &v[..]);
            let mut pre = Vec::new();
            let mut suf = Vec::new();
            for &pd in old {
                let idx = self.rpo_index[pd.index()];
                if idx < p {
                    pre.push(pd);
                } else if idx >= p + k {
                    suf.push(pd);
                }
            }
            out.preds[t] = pre;
            suffixes.push(suf);
        }
        for b in seg_post.iter().rev() {
            for &t in &out.succs[b.index()] {
                if affected[t.index()] {
                    out.preds[t.index()].push(*b);
                }
            }
        }
        for (ti, &t) in targets.iter().enumerate() {
            out.preds[t].append(&mut suffixes[ti]);
        }
        Some(out)
    }

    /// The function entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Predecessors of `b` (one entry per edge).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks reachable from the entry, in reverse post-order.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse post-order (`usize::MAX` if unreachable).
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b.index()]
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// Blocks reachable from `from` without passing through `barrier`.
    ///
    /// `from` itself is included (unless it *is* the barrier). Used to
    /// collect the body of a single-entry/single-exit subgraph.
    pub fn reachable_avoiding(&self, from: BlockId, barrier: BlockId) -> Vec<BlockId> {
        if from == barrier {
            return Vec::new();
        }
        let mut seen = vec![false; self.preds.len()];
        let mut out = Vec::new();
        let mut stack = vec![from];
        seen[from.index()] = true;
        seen[barrier.index()] = true;
        while let Some(b) = stack.pop() {
            out.push(b);
            for &s in self.succs(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Function, IcmpPred, Type, Value};

    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        f
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let ids = f.block_ids();
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(cfg.succs(entry), &[t, e]);
        assert_eq!(cfg.preds(x).len(), 2);
        assert_eq!(cfg.preds(entry).len(), 0);
    }

    #[test]
    fn rpo_orders_entry_first_exit_last() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let ids = f.block_ids();
        assert_eq!(cfg.rpo()[0], ids[0]);
        assert_eq!(*cfg.rpo().last().unwrap(), ids[3]);
        assert!(cfg.rpo_index(ids[1]) < cfg.rpo_index(ids[3]));
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut f = diamond();
        let dead = f.add_block("dead");
        let mut b = FunctionBuilder::new(&mut f, dead);
        b.ret(None);
        let cfg = Cfg::new(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn reachable_avoiding_stops_at_barrier() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let ids = f.block_ids();
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        let mut r = cfg.reachable_avoiding(t, x);
        r.sort();
        assert_eq!(r, vec![t]);
        let mut r2 = cfg.reachable_avoiding(entry, x);
        r2.sort();
        assert_eq!(r2, vec![entry, t, e]);
    }
}
