//! Control-flow graph views: predecessors, successors, traversal orders.

use darm_ir::{BlockId, Function};

/// A snapshot of a function's CFG structure.
///
/// Invalidated by any transformation that adds/removes blocks or edges;
/// recompute with [`Cfg::new`] (the melding driver does this after every
/// iteration, mirroring Algorithm 1's `RecomputeControlFlowAnalyses`).
#[derive(Debug, Clone)]
pub struct Cfg {
    entry: BlockId,
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Computes the CFG of `func`. Predecessor lists only include edges
    /// from blocks reachable from the entry (mirroring LLVM, where
    /// unreachable code does not constrain analyses).
    pub fn new(func: &Function) -> Cfg {
        let cap = func.block_capacity();
        let mut succs = vec![Vec::new(); cap];
        for b in func.block_ids() {
            succs[b.index()] = func.succs(b);
        }
        // Depth-first post-order from the entry, then reverse.
        let entry = func.entry();
        let mut visited = vec![false; cap];
        let mut post = Vec::new();
        // Iterative DFS with explicit state (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_index = vec![usize::MAX; cap];
        for (i, b) in post.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut preds = vec![Vec::new(); cap];
        for &b in &post {
            for &s in &succs[b.index()] {
                preds[s.index()].push(b);
            }
        }
        Cfg {
            entry,
            preds,
            succs,
            rpo: post,
            rpo_index,
        }
    }

    /// The function entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Predecessors of `b` (one entry per edge).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks reachable from the entry, in reverse post-order.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse post-order (`usize::MAX` if unreachable).
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b.index()]
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// Blocks reachable from `from` without passing through `barrier`.
    ///
    /// `from` itself is included (unless it *is* the barrier). Used to
    /// collect the body of a single-entry/single-exit subgraph.
    pub fn reachable_avoiding(&self, from: BlockId, barrier: BlockId) -> Vec<BlockId> {
        if from == barrier {
            return Vec::new();
        }
        let mut seen = vec![false; self.preds.len()];
        let mut out = Vec::new();
        let mut stack = vec![from];
        seen[from.index()] = true;
        seen[barrier.index()] = true;
        while let Some(b) = stack.pop() {
            out.push(b);
            for &s in self.succs(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Function, IcmpPred, Type, Value};

    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        f
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let ids = f.block_ids();
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(cfg.succs(entry), &[t, e]);
        assert_eq!(cfg.preds(x).len(), 2);
        assert_eq!(cfg.preds(entry).len(), 0);
    }

    #[test]
    fn rpo_orders_entry_first_exit_last() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let ids = f.block_ids();
        assert_eq!(cfg.rpo()[0], ids[0]);
        assert_eq!(*cfg.rpo().last().unwrap(), ids[3]);
        assert!(cfg.rpo_index(ids[1]) < cfg.rpo_index(ids[3]));
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut f = diamond();
        let dead = f.add_block("dead");
        let mut b = FunctionBuilder::new(&mut f, dead);
        b.ret(None);
        let cfg = Cfg::new(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn reachable_avoiding_stops_at_barrier() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let ids = f.block_ids();
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        let mut r = cfg.reachable_avoiding(t, x);
        r.sort();
        assert_eq!(r, vec![t]);
        let mut r2 = cfg.reachable_avoiding(entry, x);
        r2.sort();
        assert_eq!(r2, vec![entry, t, e]);
    }
}
