//! Cached analysis management with invalidation — the analogue of LLVM's
//! `FunctionAnalysisManager` for the pass pipeline in `darm-pipeline`.
//!
//! Every analysis in this crate is a pure function of the IR: recomputing it
//! on an unchanged [`Function`] yields an equal value. The
//! [`AnalysisManager`] exploits that by memoizing results keyed by analysis
//! *type* and handing out shared [`Arc`] references (so results are also
//! `Send + Sync`, ready for the parallel per-function pipelines on the
//! roadmap), and a fixpoint driver that runs many queries against one CFG
//! state computes each analysis at most once.
//!
//! # The three invalidation tiers
//!
//! | tier | trigger | effect |
//! |---|---|---|
//! | **all** | block/edge surgery, provenance unknown | [`AnalysisManager::invalidate_all`] drops every entry |
//! | **values** | instruction-only changes (φ insertion, peepholes, DCE) | [`AnalysisManager::invalidate_values`] drops only the instruction-sensitive analyses; [`Cfg`], [`DomTree`], [`PostDomTree`], [`LoopInfo`] survive |
//! | **dirty-set** | any changes, *tracked by the `darm-ir` mutation journal* | [`AnalysisManager::update_after`] replays exactly what changed and keeps, updates-in-place, or drops each entry accordingly |
//!
//! The first two tiers are driven by what a pass *reports* (a
//! [`PreservedAnalyses`] summary applied via [`AnalysisManager::retain`],
//! or direct invalidation during a run). The third tier inverts the burden
//! of proof: instead of trusting a pass's summary, the manager replays the
//! journal window since it last looked ([`AnalysisManager::update_after`])
//! and decides per analysis —
//!
//! * a clean window keeps everything;
//! * an instruction-only window keeps the shape analyses, re-seeds
//!   [`Liveness`] from the dirty blocks only, and drops
//!   [`DivergenceAnalysis`] (divergence may *shrink* under rewrites, which
//!   a monotone incremental update cannot express);
//! * a window whose block-graph edits match a supported local pattern
//!   (edge subdivision, insertion-only batches — see
//!   [`DomTree::try_update`]) updates the dominator and post-dominator
//!   trees in place, bit-identical to a fresh recompute;
//! * anything else drops what it must, never more.
//!
//! A pass should report `PreservedAnalyses::all()` and let `update_after`
//! arbitrate when it runs under a dirty-tracking driver; report the
//! coarser tiers when it manages invalidation by hand. Reports can only
//! *drop* entries, never resurrect stale ones, so an over-conservative
//! report costs recomputation, never correctness.
//!
//! [`AnalysisManager::counters`] exposes how many computations, cache hits
//! and in-place updates occurred — `darm meld --time-passes` prints the
//! per-pass split.

use crate::cfg::Cfg;
use crate::divergence::DivergenceAnalysis;
use crate::dom::{DomTree, EditSummary, PostDomTree};
use crate::liveness::Liveness;
use crate::loops::LoopInfo;
use darm_ir::{Function, JournalCursor, WindowProbe};
use std::any::Any;
use std::sync::Arc;

/// Number of cache slots — one per registered [`Analysis`] impl.
const SLOT_COUNT: usize = 6;

/// A cacheable analysis over a [`Function`].
///
/// `compute` receives the manager so dependent analyses come from the same
/// cache (e.g. [`DomTree`] pulls the cached [`Cfg`]). Implementations must
/// be pure: equal IR must produce an equal (observationally) result.
///
/// The cache is keyed by analysis type through `SLOT`, a dense per-type
/// index (cheaper than hashing a `TypeId` on the pipeline's hot path);
/// every implementation must pick a distinct slot below `SLOT_COUNT`.
/// Results must be `Send + Sync` so cached handles can cross threads once
/// function pipelines run in parallel.
pub trait Analysis: Sized + Send + Sync + 'static {
    /// Short stable name, used in reports and error messages.
    const NAME: &'static str;

    /// Whether the result depends only on the block graph (blocks + edges),
    /// not on non-terminator instructions. Shape-only analyses survive
    /// instruction-level invalidation.
    const SHAPE_ONLY: bool;

    /// Unique dense cache-slot index of this analysis type.
    const SLOT: usize;

    /// Computes the analysis for the current state of `func`.
    fn compute(func: &Function, am: &mut AnalysisManager) -> Self;
}

impl Analysis for Cfg {
    const NAME: &'static str = "cfg";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 0;

    fn compute(func: &Function, _am: &mut AnalysisManager) -> Cfg {
        Cfg::new(func)
    }
}

impl Analysis for DomTree {
    const NAME: &'static str = "domtree";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 1;

    fn compute(func: &Function, am: &mut AnalysisManager) -> DomTree {
        let cfg = am.get::<Cfg>(func);
        DomTree::new(func, &cfg)
    }
}

impl Analysis for PostDomTree {
    const NAME: &'static str = "postdomtree";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 2;

    fn compute(func: &Function, am: &mut AnalysisManager) -> PostDomTree {
        let cfg = am.get::<Cfg>(func);
        PostDomTree::new(func, &cfg)
    }
}

impl Analysis for LoopInfo {
    const NAME: &'static str = "loops";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 3;

    fn compute(func: &Function, am: &mut AnalysisManager) -> LoopInfo {
        let cfg = am.get::<Cfg>(func);
        let dt = am.get::<DomTree>(func);
        LoopInfo::new(&cfg, &dt)
    }
}

impl Analysis for DivergenceAnalysis {
    const NAME: &'static str = "divergence";
    const SHAPE_ONLY: bool = false;
    const SLOT: usize = 4;

    fn compute(func: &Function, am: &mut AnalysisManager) -> DivergenceAnalysis {
        let cfg = am.get::<Cfg>(func);
        let dt = am.get::<DomTree>(func);
        // The post-dominator tree comes from the shared cache: the paper's
        // driver recomputed it privately inside every divergence run.
        let pdt = am.get::<PostDomTree>(func);
        DivergenceAnalysis::run_with_pdt(func, &cfg, &dt, &pdt)
    }
}

impl Analysis for Liveness {
    const NAME: &'static str = "liveness";
    const SHAPE_ONLY: bool = false;
    const SLOT: usize = 5;

    fn compute(func: &Function, am: &mut AnalysisManager) -> Liveness {
        let cfg = am.get::<Cfg>(func);
        Liveness::with_cfg(func, &cfg)
    }
}

/// What a transform pass left intact, reported to the pass manager.
///
/// Construct with [`PreservedAnalyses::all`] (nothing changed),
/// [`PreservedAnalyses::none`] (CFG shape changed) or
/// [`PreservedAnalyses::cfg_shape`] (instructions changed, block graph
/// intact), then refine with [`preserve`](PreservedAnalyses::preserve).
#[derive(Debug, Clone, Default)]
pub struct PreservedAnalyses {
    all: bool,
    shape: bool,
    extra: [bool; SLOT_COUNT],
}

impl PreservedAnalyses {
    /// The pass changed nothing analyses care about: keep everything.
    pub fn all() -> PreservedAnalyses {
        PreservedAnalyses {
            all: true,
            ..PreservedAnalyses::default()
        }
    }

    /// The pass changed the block graph: keep nothing.
    pub fn none() -> PreservedAnalyses {
        PreservedAnalyses::default()
    }

    /// The pass changed instructions but not the block graph: keep the
    /// shape-only analyses (CFG, dominators, post-dominators, loops).
    pub fn cfg_shape() -> PreservedAnalyses {
        PreservedAnalyses {
            all: false,
            shape: true,
            ..PreservedAnalyses::default()
        }
    }

    /// Additionally preserve analysis `A`.
    pub fn preserve<A: Analysis>(mut self) -> PreservedAnalyses {
        self.extra[A::SLOT] = true;
        self
    }

    /// Whether everything is preserved.
    pub fn preserves_all(&self) -> bool {
        self.all
    }

    /// Whether the entry in `slot` (with the given shape-only flag)
    /// survives this report.
    fn keeps(&self, slot: usize, shape_only: bool) -> bool {
        self.all || (self.shape && shape_only) || self.extra[slot]
    }
}

/// One cache slot: the result plus its shape-only flag and name (captured
/// at insertion so [`AnalysisManager::retain`] can filter without knowing
/// the concrete types).
struct Slot {
    value: Arc<dyn Any + Send + Sync>,
    shape_only: bool,
    name: &'static str,
}

/// Totals of the manager's bookkeeping, for per-pass attribution in
/// pipeline reports: full computations (cache misses), cache hits, and
/// incremental in-place updates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisCounters {
    /// Full recomputations (cache misses).
    pub computes: usize,
    /// Queries served from the cache.
    pub hits: usize,
    /// Entries refreshed in place by [`AnalysisManager::update_after`].
    pub updates: usize,
}

impl AnalysisCounters {
    /// Component-wise difference (`self - earlier`), for per-pass deltas.
    pub fn since(&self, earlier: &AnalysisCounters) -> AnalysisCounters {
        AnalysisCounters {
            computes: self.computes - earlier.computes,
            hits: self.hits - earlier.hits,
            updates: self.updates - earlier.updates,
        }
    }
}

/// Memoizing analysis cache keyed by analysis type (via the dense
/// [`Analysis::SLOT`] index). See the module docs for the invalidation
/// contract.
#[derive(Default)]
pub struct AnalysisManager {
    slots: [Option<Slot>; SLOT_COUNT],
    computed: Vec<(&'static str, usize)>,
    counters: AnalysisCounters,
    cursor: Option<JournalCursor>,
    dom_checkpoint: Option<(JournalCursor, Arc<DomTree>)>,
}

impl std::fmt::Debug for AnalysisManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached: Vec<&str> = self.slots.iter().flatten().map(|s| s.name).collect();
        f.debug_struct("AnalysisManager")
            .field("cached", &cached)
            .field("computed", &self.computed)
            .field("counters", &self.counters)
            .finish()
    }
}

impl AnalysisManager {
    /// An empty cache.
    pub fn new() -> AnalysisManager {
        AnalysisManager::default()
    }

    /// Returns analysis `A` for the current state of `func`, computing and
    /// caching it if absent.
    pub fn get<A: Analysis>(&mut self, func: &Function) -> Arc<A> {
        if let Some(slot) = &self.slots[A::SLOT] {
            self.counters.hits += 1;
            return slot
                .value
                .clone()
                .downcast::<A>()
                .expect("cache slot type matches key");
        }
        let value = Arc::new(A::compute(func, self));
        self.note_computed(A::NAME);
        self.slots[A::SLOT] = Some(Slot {
            value: value.clone(),
            shape_only: A::SHAPE_ONLY,
            name: A::NAME,
        });
        value
    }

    /// The cached `A`, if present (no computation, not counted as a hit).
    pub fn cached<A: Analysis>(&self) -> Option<Arc<A>> {
        self.slots[A::SLOT].as_ref().map(|slot| {
            slot.value
                .clone()
                .downcast::<A>()
                .expect("cache slot type matches key")
        })
    }

    fn put<A: Analysis>(&mut self, value: Arc<A>) {
        self.slots[A::SLOT] = Some(Slot {
            value,
            shape_only: A::SHAPE_ONLY,
            name: A::NAME,
        });
    }

    /// Drops the cached `A`, if present.
    pub fn invalidate<A: Analysis>(&mut self) {
        self.slots[A::SLOT] = None;
    }

    /// Drops everything — required after any block/edge mutation whose
    /// provenance is unknown (tier 1; prefer
    /// [`AnalysisManager::update_after`] when the mutation journal covers
    /// the window).
    pub fn invalidate_all(&mut self) {
        self.slots = Default::default();
    }

    /// Drops the instruction-sensitive analyses, keeping shape-only ones —
    /// correct after instruction-level mutation that leaves the block graph
    /// intact (φ insertion, operand rewrites, instruction removal; tier 2).
    pub fn invalidate_values(&mut self) {
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|s| !s.shape_only) {
                *slot = None;
            }
        }
    }

    /// Anchors the manager's journal cursor at the function's current
    /// state, asserting that every cached entry is valid for it (the
    /// standing cache contract). Call once before a dirty-tracked driver
    /// starts interleaving mutations with [`AnalysisManager::update_after`].
    pub fn observe(&mut self, func: &Function) {
        self.cursor = Some(func.journal_head());
    }

    /// Publishes a *repair checkpoint*: the dominator tree of the
    /// function's current state together with the journal cursor marking
    /// it. By storing one, the driver asserts the function is in valid,
    /// fully repaired SSA form right now — which lets the next SSA-repair
    /// run scope its very first broken-definition scan to the mutations
    /// and dominance changes since this point instead of sweeping the
    /// whole function.
    pub fn set_dom_checkpoint(&mut self, func: &Function, tree: Arc<DomTree>) {
        self.dom_checkpoint = Some((func.journal_head(), tree));
    }

    /// Consumes the pending repair checkpoint, if any.
    pub fn take_dom_checkpoint(&mut self) -> Option<(JournalCursor, Arc<DomTree>)> {
        self.dom_checkpoint.take()
    }

    /// Tier-3 invalidation: classifies the mutation window since the last
    /// [`observe`](AnalysisManager::observe)/`update_after` (an O(1) probe
    /// on the journal) and reconciles every cached entry with what
    /// actually changed — keeping entries untouched windows cannot have
    /// broken, updating dominator trees in place for supported local edit
    /// patterns, re-seeding liveness from the dirty blocks, and dropping
    /// the rest. The full event replay is paid only when a cached entry
    /// can actually profit from it; wide windows (wholesale region
    /// rewrites) degrade straight to
    /// [`invalidate_all`](AnalysisManager::invalidate_all), as does a
    /// missing cursor or a saturated journal.
    ///
    /// Returns the window classification.
    pub fn update_after(&mut self, func: &Function) -> WindowProbe {
        /// Block-graph windows wider than this skip the incremental
        /// dominator attempt outright — they fall back to recompute
        /// anyway, and normalizing hundreds of edge events costs more
        /// than the recompute.
        const EDIT_BATCH_CAP: usize = 48;
        let probe = match self.cursor {
            Some(cursor) => func.probe_since(cursor),
            None => WindowProbe::Saturated,
        };
        let cursor = self.cursor.replace(func.journal_head());
        match probe {
            WindowProbe::Clean => {}
            WindowProbe::Saturated => self.invalidate_all(),
            WindowProbe::InstsOnly { .. } => {
                // Shape analyses stay; liveness can be re-seeded from the
                // dirty blocks (the only consumer of the replay here);
                // divergence may shrink under rewrites, so it recomputes
                // (against the warm CFG/dom/postdom).
                self.invalidate::<DivergenceAnalysis>();
                match (self.cached::<Liveness>(), self.cached::<Cfg>()) {
                    (Some(live), Some(cfg)) => {
                        let delta = func.dirty_since(cursor.expect("probed via cursor"));
                        let updated = live.updated(func, &cfg, &delta.blocks);
                        self.put(Arc::new(updated));
                        self.note_updated(Liveness::NAME);
                    }
                    _ => self.invalidate::<Liveness>(),
                }
            }
            WindowProbe::Shape { shape_events, .. } => {
                let had_dom = self.cached::<DomTree>();
                let had_pdt = self.cached::<PostDomTree>();
                let try_incremental =
                    (had_dom.is_some() || had_pdt.is_some()) && shape_events <= EDIT_BATCH_CAP;
                self.invalidate_all();
                if try_incremental {
                    let delta = func.dirty_since(cursor.expect("probed via cursor"));
                    if !delta.is_saturated() {
                        let summary = EditSummary::normalize(func, &delta.edits);
                        let cfg = self.get::<Cfg>(func);
                        if let Some(old) = had_dom {
                            if let Some(updated) = old.try_update(func, &cfg, &summary) {
                                self.put(Arc::new(updated));
                                self.note_updated(DomTree::NAME);
                            }
                        }
                        if let Some(old) = had_pdt {
                            if let Some(updated) = old.try_update(func, &cfg, &summary) {
                                self.put(Arc::new(updated));
                                self.note_updated(PostDomTree::NAME);
                            }
                        }
                    }
                }
            }
        }
        probe
    }

    /// Applies a pass's [`PreservedAnalyses`] report: every cached entry
    /// not covered by the report is dropped.
    pub fn retain(&mut self, preserved: &PreservedAnalyses) {
        if preserved.preserves_all() {
            return;
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot
                .as_ref()
                .is_some_and(|s| !preserved.keeps(i, s.shape_only))
            {
                *slot = None;
            }
        }
    }

    /// How many times each analysis was computed (cache misses), in first-
    /// computed order. Cache hits do not count; the difference between
    /// queries and computations is the reuse the cache bought.
    pub fn computations(&self) -> &[(&'static str, usize)] {
        &self.computed
    }

    /// Total number of analysis computations (cache misses) so far.
    pub fn total_computations(&self) -> usize {
        self.counters.computes
    }

    /// Snapshot of the compute/hit/update totals.
    pub fn counters(&self) -> AnalysisCounters {
        self.counters
    }

    fn note_computed(&mut self, name: &'static str) {
        self.counters.computes += 1;
        match self.computed.iter_mut().find(|(n, _)| *n == name) {
            Some((_, n)) => *n += 1,
            None => self.computed.push((name, 1)),
        }
    }

    fn note_updated(&mut self, _name: &'static str) {
        self.counters.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, InstData, Opcode, Type, Value};

    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        f
    }

    #[test]
    fn caches_and_shares_dependencies() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        let dt1 = am.get::<DomTree>(&f);
        let dt2 = am.get::<DomTree>(&f);
        assert!(Arc::ptr_eq(&dt1, &dt2));
        // DomTree computed the Cfg through the cache: exactly one compute of
        // each despite the repeated query.
        assert_eq!(am.computations(), &[("cfg", 1), ("domtree", 1)]);
        am.get::<DivergenceAnalysis>(&f);
        // Divergence pulls the post-dominator tree through the cache too.
        assert_eq!(am.total_computations(), 4);
        assert!(am.counters().hits >= 3);
    }

    #[test]
    fn value_invalidation_keeps_shape_analyses() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.get::<DivergenceAnalysis>(&f);
        am.get::<PostDomTree>(&f);
        am.invalidate_values();
        assert!(am.cached::<Cfg>().is_some());
        assert!(am.cached::<DomTree>().is_some());
        assert!(am.cached::<PostDomTree>().is_some());
        assert!(am.cached::<DivergenceAnalysis>().is_none());
        am.invalidate_all();
        assert!(am.cached::<Cfg>().is_none());
    }

    #[test]
    fn retain_applies_preservation_report() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.get::<DivergenceAnalysis>(&f);
        am.retain(&PreservedAnalyses::all());
        assert!(am.cached::<DivergenceAnalysis>().is_some());
        am.retain(&PreservedAnalyses::cfg_shape());
        assert!(am.cached::<Cfg>().is_some());
        assert!(am.cached::<DivergenceAnalysis>().is_none());
        am.retain(&PreservedAnalyses::none().preserve::<Cfg>());
        assert!(am.cached::<Cfg>().is_some());
        assert!(am.cached::<DomTree>().is_none());
    }

    #[test]
    fn update_after_keeps_everything_on_clean_window() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.observe(&f);
        am.get::<DivergenceAnalysis>(&f);
        am.get::<Liveness>(&f);
        let before = am.total_computations();
        let probe = am.update_after(&f);
        assert_eq!(probe, WindowProbe::Clean);
        assert!(am.cached::<DivergenceAnalysis>().is_some());
        assert!(am.cached::<Liveness>().is_some());
        assert_eq!(am.total_computations(), before);
    }

    #[test]
    fn update_after_inst_only_window_keeps_shape() {
        let mut f = diamond();
        let mut am = AnalysisManager::new();
        am.observe(&f);
        let dt = am.get::<DomTree>(&f);
        am.get::<DivergenceAnalysis>(&f);
        am.get::<Liveness>(&f);
        // Instruction-only mutation: insert a dead add in `t`.
        let t = f.block_ids()[1];
        f.insert_inst_at(
            t,
            0,
            InstData::new(Opcode::Add, Type::I32, vec![Value::I32(1), Value::I32(2)]),
        );
        let probe = am.update_after(&f);
        assert!(matches!(probe, WindowProbe::InstsOnly { .. }));
        assert!(
            Arc::ptr_eq(&dt, &am.cached::<DomTree>().unwrap()),
            "shape analyses survive an instruction-only window"
        );
        assert!(am.cached::<DivergenceAnalysis>().is_none());
        // Liveness was refreshed in place, and matches a fresh compute.
        let live = am.cached::<Liveness>().expect("liveness updated in place");
        let fresh = Liveness::new(&f);
        for b in f.block_ids() {
            assert_eq!(live.live_in(b), fresh.live_in(b));
            assert_eq!(live.live_out(b), fresh.live_out(b));
        }
        assert_eq!(am.counters().updates, 1);
    }

    #[test]
    fn update_after_without_observe_degrades_to_full_invalidation() {
        let mut f = diamond();
        let mut am = AnalysisManager::new();
        am.get::<DomTree>(&f);
        let t = f.block_ids()[1];
        let term = f.terminator(t).unwrap();
        f.remove_inst(term);
        let probe = am.update_after(&f);
        assert_eq!(probe, WindowProbe::Saturated);
        assert!(am.cached::<DomTree>().is_none());
        assert!(am.cached::<Cfg>().is_none());
    }
}
