//! Cached analysis management with invalidation — the analogue of LLVM's
//! `FunctionAnalysisManager` for the pass pipeline in `darm-pipeline`.
//!
//! Every analysis in this crate is a pure function of the IR: recomputing it
//! on an unchanged [`Function`] yields an equal value. The
//! [`AnalysisManager`] exploits that by memoizing results keyed by analysis
//! *type* and handing out shared [`Arc`] references (so results are also
//! `Send + Sync`, ready for the parallel per-function pipelines on the
//! roadmap), and a fixpoint driver that runs many queries against one CFG
//! state computes each analysis at most once.
//!
//! # Reconcile-on-read
//!
//! Every cache slot remembers the *journal cursor* of the function state
//! it was computed (or last validated) for. A query
//! ([`AnalysisManager::get`]) probes the window since that cursor in O(1)
//! and, when it is not clean, reconciles the entry *lazily at read time*
//! via [`Analysis::refresh`]:
//!
//! * a clean window serves the entry as a plain hit;
//! * an instruction-only window keeps the shape analyses ([`Cfg`],
//!   [`DomTree`], [`PostDomTree`], [`LoopInfo`]), re-seeds [`Liveness`]
//!   from the dirty blocks only, and re-derives [`DivergenceAnalysis`]
//!   over the *changed closure* of the dirty instructions (divergence may
//!   shrink under rewrites, so the closure is reset to the lattice bottom
//!   and re-run with the untouched remainder as a fixed boundary — exact,
//!   not merely monotone; see
//!   [`DivergenceAnalysis::refresh_window`]);
//! * a block-graph window updates the dominator and post-dominator trees
//!   in place, bit-identical to a fresh recompute — edge subdivision and
//!   insertion-only batches by exact local rules, deletion-containing
//!   batches (the bulk of meld surgery) by the affected-subtree recompute
//!   (see [`DomTree::try_update`]; the deletion share is split out as
//!   [`AnalysisCounters::in_place_deletion_updates`]) — splices the
//!   [`Cfg`] snapshot's RPO below the window's DFS-tree anchor
//!   ([`Cfg::try_update`], counted by
//!   [`AnalysisCounters::in_place_cfg_updates`]), and re-derives
//!   divergence with every surviving divergent branch's join set
//!   recomputed under the new shape
//!   ([`AnalysisCounters::in_place_divergence_updates`]) — each behind a
//!   profitability gate that only admits batches small enough relative
//!   to the function for the update to beat the recompute it replaces;
//! * anything else — a saturated journal, a window a gate rejects, or
//!   the divergence slot's periodic exact-confirm round — drops the
//!   entry, which recomputes on demand.
//!
//! No analysis is *unconditionally* dropped anymore: every slot has an
//! in-place path, and full recomputation is purely the fallback the
//! gates and confirm rounds choose on purpose.
//!
//! Laziness is what makes the scheme pay: a mutation-heavy stretch (meld
//! surgery followed by cleanup rounds) coalesces into *one* window per
//! entry, reconciled at its next query, instead of an eager pass over the
//! cache per edit batch. Per-slot cursors are what make it sound: a
//! transform that mutates, internally invalidates, and recomputes an
//! analysis mid-run produces an entry stamped with its own (newer)
//! cursor, so the journal never replays edits onto a tree that already
//! reflects them.
//!
//! # Invalidation tiers
//!
//! | tier | trigger | effect |
//! |---|---|---|
//! | **all** | block/edge surgery, provenance unknown | [`AnalysisManager::invalidate_all`] drops every entry |
//! | **values** | instruction-only changes (φ insertion, peepholes, DCE) | [`AnalysisManager::invalidate_values`] drops only the instruction-sensitive analyses |
//! | **dirty-set** | any journaled mutation | reconcile-on-read as above; [`AnalysisManager::update_after`] runs the same reconciliation eagerly over every slot |
//!
//! The first two tiers are driven by what a pass *reports* (a
//! [`PreservedAnalyses`] summary applied via [`AnalysisManager::retain`],
//! or direct invalidation during a run) and remain for drivers that
//! manage invalidation by hand. The dirty-set tier inverts the burden of
//! proof: the journal, not the pass's summary, decides what survives.
//! Journal-arbitrated pipelines (`PipelineOptions::journal_sync` in
//! `darm-pipeline`) run [`AnalysisManager::update_after_with_report`]
//! after every pass — the pass's report can then only *extend* validity
//! (vouching for entries across the pass's own window, e.g. DCE proving
//! divergence intact), never resurrect an entry the journal would
//! otherwise have condemned.
//!
//! [`AnalysisManager::counters`] exposes how many computations, cache hits
//! and in-place updates occurred — `darm meld --time-passes` prints the
//! per-pass split, including the deletion-batch share and the dedicated
//! CFG/divergence in-place-update columns.

use crate::cfg::Cfg;
use crate::divergence::DivergenceAnalysis;
use crate::dom::{DomTree, EditSummary, PostDomTree};
use crate::liveness::Liveness;
use crate::loops::LoopInfo;
use darm_ir::{Function, JournalCursor, WindowProbe};
use std::any::Any;
use std::sync::Arc;

/// Number of cache slots — one per registered [`Analysis`] impl.
const SLOT_COUNT: usize = 6;

/// A cacheable analysis over a [`Function`].
///
/// `compute` receives the manager so dependent analyses come from the same
/// cache (e.g. [`DomTree`] pulls the cached [`Cfg`]). Implementations must
/// be pure: equal IR must produce an equal (observationally) result.
///
/// The cache is keyed by analysis type through `SLOT`, a dense per-type
/// index (cheaper than hashing a `TypeId` on the pipeline's hot path);
/// every implementation must pick a distinct slot below `SLOT_COUNT`.
/// Results must be `Send + Sync` so cached handles can cross threads once
/// function pipelines run in parallel.
pub trait Analysis: Sized + Send + Sync + 'static {
    /// Short stable name, used in reports and error messages.
    const NAME: &'static str;

    /// Whether the result depends only on the block graph (blocks + edges),
    /// not on non-terminator instructions. Shape-only analyses survive
    /// instruction-level invalidation.
    const SHAPE_ONLY: bool;

    /// Unique dense cache-slot index of this analysis type.
    const SLOT: usize;

    /// Computes the analysis for the current state of `func`.
    fn compute(func: &Function, am: &mut AnalysisManager) -> Self;

    /// Reconciles a cached result with the journal window since `cursor`
    /// (pre-classified as `probe`, never [`WindowProbe::Clean`]). The
    /// default keeps shape-only results across instruction-only windows
    /// and drops everything else; the dominator trees and liveness
    /// override it with in-place updates.
    fn refresh(
        _old: &Self,
        _func: &Function,
        _am: &mut AnalysisManager,
        probe: WindowProbe,
        _cursor: JournalCursor,
    ) -> Refresh<Self> {
        match probe {
            WindowProbe::InstsOnly { .. } if Self::SHAPE_ONLY => Refresh::Keep,
            _ => Refresh::Drop,
        }
    }
}

/// Outcome of reconciling one cached entry with its mutation window (see
/// [`Analysis::refresh`]).
pub enum Refresh<A> {
    /// The window cannot have broken the entry: keep it as-is.
    Keep,
    /// The entry absorbed the window in place.
    Update {
        /// The refreshed result.
        value: A,
        /// Whether the window net-deleted edges — the batch shape counted
        /// by [`AnalysisCounters::in_place_deletion_updates`].
        deletion_batch: bool,
    },
    /// The entry cannot survive the window: drop and recompute on demand.
    Drop,
}

/// Below this many live blocks the dominator/post-dominator refresh drops
/// straight to a rebuild: the in-place attempt's fixed costs (journal
/// replay, edit normalization, old-array remapping) exceed the fixpoint
/// rebuild on graphs this small.
const TREE_UPDATE_MIN_LIVE_BLOCKS: usize = 16;

/// Shared dominator/post-dominator refresh: absorb block-graph windows via
/// `try_update`, bounded by the edit-batch cap.
fn tree_refresh<A>(
    func: &Function,
    am: &mut AnalysisManager,
    probe: WindowProbe,
    cursor: JournalCursor,
    win_scale: usize,
    viable: impl Fn(&[darm_ir::CfgEdit]) -> bool,
    apply: impl FnOnce(&EditSummary, &Cfg) -> Option<A>,
) -> Refresh<A> {
    // Attempt the in-place update only when the batch is small *relative
    // to the function* — decided from the O(1) probe metadata alone, before
    // any replay or normalization is paid. A window whose event count
    // rivals the block count (meld surgery rewriting most of a small
    // kernel) perturbs most of the tree: the affected-subtree rebuild
    // would converge on the same work as the recompute it replaces, plus
    // anchoring overhead. Small batches relative to the function (a folded
    // branch, an elided landing pad, region surgery inside a big kernel)
    // are where the update wins. `win_scale` sets how much smaller the
    // batch must be: the forward tree (1) reuses the CFG snapshot's
    // predecessor lists and iterates only the affected region, while the
    // reversed tree (4) must rebuild the reversed graph and its postorder
    // wholesale — near the cost of the recompute it replaces — so it only
    // pays off against far smaller batches.
    // Both gates are O(1), paid before any replay: the batch must be small
    // *relative to the function*, and the function itself must be big
    // enough that a rebuild actually hurts. On a graph of a dozen blocks
    // the fixpoint rebuild is a microsecond — cheaper than the replay,
    // normalization and old-array remapping an in-place attempt spends
    // before it can even decline (measured on the paper kernels: the
    // attempts cost more end-to-end than every rebuild they avoided).
    let cheap_window = |shape_events: usize| {
        func.live_block_count() >= TREE_UPDATE_MIN_LIVE_BLOCKS
            && shape_events * win_scale <= func.live_block_count()
    };
    match probe {
        WindowProbe::InstsOnly { .. } => Refresh::Keep,
        WindowProbe::Shape { shape_events, .. } if cheap_window(shape_events) => {
            let head = func.journal_head();
            // Replay the raw block-graph slice of the window (cheap — no
            // bitsets) and let the tree's endpoint pre-filter reject
            // unprofitable batches before normalization is paid.
            let mut edits = std::mem::take(&mut am.edits_scratch);
            let ok = func.cfg_edits_since(cursor, &mut edits);
            if !ok || !viable(&edits) {
                am.edits_scratch = edits;
                return Refresh::Drop;
            }
            // The dominator and post-dominator trees usually carry the
            // same window: normalize it once and memoize.
            let summary = match am.tree_window_memo.take() {
                Some(memo) if memo.from == cursor && memo.to == head => memo.summary,
                _ => EditSummary::normalize(func, &edits),
            };
            am.edits_scratch = edits;
            let cfg = am.get::<Cfg>(func);
            let refreshed = match apply(&summary, &cfg) {
                Some(value) => Refresh::Update {
                    value,
                    deletion_batch: summary.has_deletions(),
                },
                None => Refresh::Drop,
            };
            am.tree_window_memo = Some(TreeWindowMemo {
                from: cursor,
                to: head,
                summary,
            });
            refreshed
        }
        _ => Refresh::Drop,
    }
}

impl Analysis for Cfg {
    const NAME: &'static str = "cfg";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 0;

    fn compute(func: &Function, _am: &mut AnalysisManager) -> Cfg {
        Cfg::new(func)
    }

    fn refresh(
        old: &Cfg,
        func: &Function,
        am: &mut AnalysisManager,
        probe: WindowProbe,
        cursor: JournalCursor,
    ) -> Refresh<Cfg> {
        match probe {
            WindowProbe::InstsOnly { .. } => Refresh::Keep,
            // The splice consumes the *raw* edit list (a net-zero window
            // can still reorder successors, and with them the RPO), so
            // gate on the O(1) probe metadata and replay without
            // normalizing.
            WindowProbe::Shape { shape_events, .. }
                if shape_events * 2 <= func.live_block_count() =>
            {
                let mut edits = std::mem::take(&mut am.edits_scratch);
                let ok = func.cfg_edits_since(cursor, &mut edits);
                let refreshed = if ok {
                    old.try_update(func, &edits)
                } else {
                    None
                };
                am.edits_scratch = edits;
                match refreshed {
                    Some(value) => Refresh::Update {
                        value,
                        deletion_batch: false,
                    },
                    None => Refresh::Drop,
                }
            }
            _ => Refresh::Drop,
        }
    }
}

impl Analysis for DomTree {
    const NAME: &'static str = "domtree";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 1;

    fn compute(func: &Function, am: &mut AnalysisManager) -> DomTree {
        let cfg = am.get::<Cfg>(func);
        DomTree::new(func, &cfg)
    }

    fn refresh(
        old: &DomTree,
        func: &Function,
        am: &mut AnalysisManager,
        probe: WindowProbe,
        cursor: JournalCursor,
    ) -> Refresh<DomTree> {
        tree_refresh(
            func,
            am,
            probe,
            cursor,
            1,
            |edits| old.absorb_viable(edits),
            |summary, cfg| old.try_update(func, cfg, summary),
        )
    }
}

impl Analysis for PostDomTree {
    const NAME: &'static str = "postdomtree";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 2;

    fn compute(func: &Function, am: &mut AnalysisManager) -> PostDomTree {
        let cfg = am.get::<Cfg>(func);
        PostDomTree::new(func, &cfg)
    }

    fn refresh(
        old: &PostDomTree,
        func: &Function,
        am: &mut AnalysisManager,
        probe: WindowProbe,
        cursor: JournalCursor,
    ) -> Refresh<PostDomTree> {
        tree_refresh(
            func,
            am,
            probe,
            cursor,
            4,
            |edits| old.absorb_viable(edits),
            |summary, cfg| old.try_update(func, cfg, summary),
        )
    }
}

impl Analysis for LoopInfo {
    const NAME: &'static str = "loops";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 3;

    fn compute(func: &Function, am: &mut AnalysisManager) -> LoopInfo {
        let cfg = am.get::<Cfg>(func);
        let dt = am.get::<DomTree>(func);
        LoopInfo::new(&cfg, &dt)
    }
}

impl Analysis for DivergenceAnalysis {
    const NAME: &'static str = "divergence";
    const SHAPE_ONLY: bool = false;
    const SLOT: usize = 4;

    fn compute(func: &Function, am: &mut AnalysisManager) -> DivergenceAnalysis {
        let cfg = am.get::<Cfg>(func);
        let dt = am.get::<DomTree>(func);
        // The post-dominator tree comes from the shared cache: the paper's
        // driver recomputed it privately inside every divergence run.
        let pdt = am.get::<PostDomTree>(func);
        DivergenceAnalysis::run_with_pdt(func, &cfg, &dt, &pdt)
    }

    fn refresh(
        old: &DivergenceAnalysis,
        func: &Function,
        am: &mut AnalysisManager,
        probe: WindowProbe,
        cursor: JournalCursor,
    ) -> Refresh<DivergenceAnalysis> {
        let (events, shape_window) = match probe {
            WindowProbe::InstsOnly { events } => (events, false),
            WindowProbe::Shape { events, .. } => (events, true),
            _ => return Refresh::Drop,
        };
        // Profitability floor: a fresh divergence sweep is O(live insts)
        // with a small constant (no use map — see `run_with_pdt`), so on
        // tiny functions it undercuts the refresh's fixed costs (journal
        // replay, def→use rows, join re-derivation) no matter how small
        // the window is. The crossover sits around the size where the
        // sweep's repeated whole-function rounds start to dominate the
        // refresh's one-pass row build (measured on the paper kernels).
        if func.live_inst_count() < 56 {
            return Refresh::Drop;
        }
        // Periodic exact-confirm round: every 32nd reconciliation recomputes
        // from scratch on purpose, so a defect in the incremental path (or
        // in the journal feeding it) is caught within a bounded number of
        // windows instead of compounding silently for a whole session.
        am.divergence_refreshes += 1;
        if am.divergence_refreshes.is_multiple_of(32) {
            return Refresh::Drop;
        }
        // Replay cap: the refresh pays one pass over the window's events
        // before its live-seed gate can arbitrate, so the window must be
        // small against the function for the attempt itself to be cheaper
        // than the recompute it hopes to beat. Raw event counts overstate
        // the dirty set (an inserted-then-rewritten-then-deleted
        // instruction is three events and zero seeds), so the multiplier
        // leaves room for churn; meld-surgery windows that rewrite the
        // bulk of the function still land far above it and drop here,
        // before any replay is paid.
        if events > func.live_inst_count() {
            return Refresh::Drop;
        }
        // The shape dependencies must already be reconciled to the
        // function's current state — the divergence slot is swept last in
        // `update_after`, and the query path pulls CFG and both trees
        // before divergence — so a refresh never *forces* a dependency
        // recompute. A window harsh enough to drop the trees drops
        // divergence with them (the recompute then rebuilds all four
        // through the cache as usual).
        let head = func.journal_head();
        let (Some(cfg), Some(dt), Some(pdt)) = (
            am.reconciled_dep::<Cfg>(head),
            am.reconciled_dep::<DomTree>(head),
            am.reconciled_dep::<PostDomTree>(head),
        ) else {
            return Refresh::Drop;
        };
        // Zero-allocation replay of just the touched-instruction events;
        // a saturated cursor (`false`) means anything may have changed.
        let mut touched = std::mem::take(&mut am.touched_scratch);
        touched.clear();
        let ok = func.insts_touched_since(cursor, |id| touched.push(id));
        let refreshed = if ok {
            touched.sort_unstable();
            touched.dedup();
            old.refresh_window(func, &cfg, &dt, &pdt, &touched, shape_window)
        } else {
            None
        };
        am.touched_scratch = touched;
        match refreshed {
            Some(value) => {
                #[cfg(debug_assertions)]
                {
                    let fresh = DivergenceAnalysis::run_with_pdt(func, &cfg, &dt, &pdt);
                    for i in 0..func.inst_capacity() {
                        let id = darm_ir::InstId::new(i);
                        debug_assert_eq!(
                            value.is_inst_divergent(id),
                            fresh.is_inst_divergent(id),
                            "incremental divergence diverged from fresh at inst {i}"
                        );
                    }
                    for b in 0..func.block_capacity() {
                        let bb = darm_ir::BlockId::new(b);
                        debug_assert_eq!(
                            value.is_divergent_branch(bb),
                            fresh.is_divergent_branch(bb),
                            "incremental divergent-branch flag diverged at block {b}"
                        );
                    }
                }
                Refresh::Update {
                    value,
                    deletion_batch: false,
                }
            }
            None => Refresh::Drop,
        }
    }
}

impl Analysis for Liveness {
    const NAME: &'static str = "liveness";
    const SHAPE_ONLY: bool = false;
    const SLOT: usize = 5;

    fn compute(func: &Function, am: &mut AnalysisManager) -> Liveness {
        let cfg = am.get::<Cfg>(func);
        Liveness::with_cfg(func, &cfg)
    }

    fn refresh(
        old: &Liveness,
        func: &Function,
        am: &mut AnalysisManager,
        probe: WindowProbe,
        cursor: JournalCursor,
    ) -> Refresh<Liveness> {
        // Instruction-only windows re-seed the dataflow from the dirty
        // blocks (the block graph is intact, so the current CFG snapshot
        // is the snapshot of the window's own state).
        match probe {
            WindowProbe::InstsOnly { .. } => {
                let delta = func.dirty_since(cursor);
                if delta.is_saturated() {
                    return Refresh::Drop;
                }
                let cfg = am.get::<Cfg>(func);
                Refresh::Update {
                    value: old.updated(func, &cfg, &delta.blocks),
                    deletion_batch: false,
                }
            }
            _ => Refresh::Drop,
        }
    }
}

/// What a transform pass left intact, reported to the pass manager.
///
/// Construct with [`PreservedAnalyses::all`] (nothing changed),
/// [`PreservedAnalyses::none`] (CFG shape changed) or
/// [`PreservedAnalyses::cfg_shape`] (instructions changed, block graph
/// intact), then refine with [`preserve`](PreservedAnalyses::preserve).
#[derive(Debug, Clone, Default)]
pub struct PreservedAnalyses {
    all: bool,
    shape: bool,
    extra: [bool; SLOT_COUNT],
}

impl PreservedAnalyses {
    /// The pass changed nothing analyses care about: keep everything.
    pub fn all() -> PreservedAnalyses {
        PreservedAnalyses {
            all: true,
            ..PreservedAnalyses::default()
        }
    }

    /// The pass changed the block graph: keep nothing.
    pub fn none() -> PreservedAnalyses {
        PreservedAnalyses::default()
    }

    /// The pass changed instructions but not the block graph: keep the
    /// shape-only analyses (CFG, dominators, post-dominators, loops).
    pub fn cfg_shape() -> PreservedAnalyses {
        PreservedAnalyses {
            all: false,
            shape: true,
            ..PreservedAnalyses::default()
        }
    }

    /// Additionally preserve analysis `A`.
    pub fn preserve<A: Analysis>(mut self) -> PreservedAnalyses {
        self.extra[A::SLOT] = true;
        self
    }

    /// Whether everything is preserved.
    pub fn preserves_all(&self) -> bool {
        self.all
    }

    /// Whether the entry in `slot` (with the given shape-only flag)
    /// survives this report.
    fn keeps(&self, slot: usize, shape_only: bool) -> bool {
        self.all || (self.shape && shape_only) || self.extra[slot]
    }
}

/// One cache slot: the result plus its shape-only flag and name (captured
/// at insertion so [`AnalysisManager::retain`] can filter without knowing
/// the concrete types), and the journal cursor of the function state the
/// entry is valid for — [`AnalysisManager::update_after`] reconciles every
/// entry against *its own* window, so entries computed mid-pass (after a
/// transform's internal invalidation) are never replayed against edits
/// they already reflect.
#[derive(Clone)]
struct Slot {
    value: Arc<dyn Any + Send + Sync>,
    shape_only: bool,
    name: &'static str,
    cursor: JournalCursor,
}

/// Totals of the manager's bookkeeping, for per-pass attribution in
/// pipeline reports: full computations (cache misses), cache hits, and
/// incremental in-place updates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisCounters {
    /// Full recomputations (cache misses).
    pub computes: usize,
    /// Queries served from the cache.
    pub hits: usize,
    /// Entries refreshed in place by [`AnalysisManager::update_after`].
    pub updates: usize,
    /// The subset of `updates` that absorbed a *deletion-containing* edit
    /// batch via the affected-subtree rule (see
    /// [`DomTree::try_update`]) — the meld-surgery shape that used to force
    /// a full dominator recompute.
    pub in_place_deletion_updates: usize,
    /// The subset of `updates` that spliced the [`Cfg`] snapshot's RPO
    /// below the window's DFS-tree anchor instead of rebuilding it (see
    /// [`Cfg::try_update`]).
    pub in_place_cfg_updates: usize,
    /// The subset of `updates` that re-derived [`DivergenceAnalysis`] over
    /// the window's changed closure instead of recomputing from scratch
    /// (see [`DivergenceAnalysis::refresh_window`]).
    pub in_place_divergence_updates: usize,
}

impl AnalysisCounters {
    /// Component-wise difference (`self - earlier`), for per-pass deltas.
    pub fn since(&self, earlier: &AnalysisCounters) -> AnalysisCounters {
        AnalysisCounters {
            computes: self.computes - earlier.computes,
            hits: self.hits - earlier.hits,
            updates: self.updates - earlier.updates,
            in_place_deletion_updates: self.in_place_deletion_updates
                - earlier.in_place_deletion_updates,
            in_place_cfg_updates: self.in_place_cfg_updates - earlier.in_place_cfg_updates,
            in_place_divergence_updates: self.in_place_divergence_updates
                - earlier.in_place_divergence_updates,
        }
    }
}

/// Memoizing analysis cache keyed by analysis type (via the dense
/// [`Analysis::SLOT`] index). See the module docs for the invalidation
/// contract.
#[derive(Default)]
pub struct AnalysisManager {
    slots: [Option<Slot>; SLOT_COUNT],
    computed: Vec<(&'static str, usize)>,
    counters: AnalysisCounters,
    cursor: Option<JournalCursor>,
    dom_checkpoint: Option<(JournalCursor, Arc<DomTree>)>,
    /// Memoized normalized edit summary of the window `[from, to)` — the
    /// dominator and post-dominator trees usually reconcile the same
    /// window back to back, and normalization is the expensive half.
    tree_window_memo: Option<TreeWindowMemo>,
    /// Reused replay buffer for [`Function::cfg_edits_since`].
    edits_scratch: Vec<darm_ir::CfgEdit>,
    /// Reused replay buffer for [`Function::insts_touched_since`] (the
    /// divergence refresh's touched-instruction window).
    touched_scratch: Vec<darm_ir::InstId>,
    /// Reconciliations the divergence slot has attempted — drives the
    /// periodic exact-confirm round (every 32nd drops and recomputes).
    divergence_refreshes: usize,
}

/// See [`AnalysisManager::tree_window_memo`].
struct TreeWindowMemo {
    from: JournalCursor,
    to: JournalCursor,
    summary: EditSummary,
}

impl std::fmt::Debug for AnalysisManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached: Vec<&str> = self.slots.iter().flatten().map(|s| s.name).collect();
        f.debug_struct("AnalysisManager")
            .field("cached", &cached)
            .field("computed", &self.computed)
            .field("counters", &self.counters)
            .finish()
    }
}

impl AnalysisManager {
    /// An empty cache.
    pub fn new() -> AnalysisManager {
        AnalysisManager::default()
    }

    /// Returns analysis `A` for the current state of `func` — serving the
    /// cache, *reconciling on read* (a cached entry whose journal window
    /// is non-clean is kept, updated in place, or dropped per
    /// [`Analysis::refresh`]), or computing from scratch. Reconciliation
    /// happens lazily at query time, so mutation-heavy stretches coalesce
    /// into one window per entry instead of paying per edit batch.
    pub fn get<A: Analysis>(&mut self, func: &Function) -> Arc<A> {
        match self.reconcile::<A>(func, true) {
            Some(value) => value,
            None => {
                darm_ir::fault::point("analysis::compute");
                let value = Arc::new(A::compute(func, self));
                self.note_computed(A::NAME);
                self.put(func, value.clone());
                value
            }
        }
    }

    /// Reconciles the cached `A` (if any) with the journal window since it
    /// was last validated, returning the surviving value. `count_hit`
    /// controls whether an entry served unchanged counts as a cache hit
    /// (query paths) or not (eager [`AnalysisManager::update_after`]
    /// sweeps).
    fn reconcile<A: Analysis>(&mut self, func: &Function, count_hit: bool) -> Option<Arc<A>> {
        let slot = self.slots[A::SLOT].as_ref()?;
        let cursor = slot.cursor;
        let value = slot
            .value
            .clone()
            .downcast::<A>()
            .expect("cache slot type matches key");
        let probe = func.probe_since(cursor);
        if matches!(probe, WindowProbe::Clean) {
            if count_hit {
                self.counters.hits += 1;
            }
            return Some(value);
        }
        match A::refresh(&value, func, self, probe, cursor) {
            Refresh::Keep => {
                if count_hit {
                    self.counters.hits += 1;
                }
                self.refresh_cursor::<A>(func.journal_head());
                Some(value)
            }
            Refresh::Update {
                value,
                deletion_batch,
            } => {
                let value = Arc::new(value);
                self.put(func, value.clone());
                self.note_updated(A::NAME, deletion_batch);
                Some(value)
            }
            Refresh::Drop => {
                self.slots[A::SLOT] = None;
                None
            }
        }
    }

    /// The cached `A` only if it is already reconciled to journal cursor
    /// `head` — the dependency form used by in-place refreshes, which must
    /// never force a dependency recompute of their own.
    fn reconciled_dep<A: Analysis>(&self, head: JournalCursor) -> Option<Arc<A>> {
        self.slots[A::SLOT]
            .as_ref()
            .filter(|slot| slot.cursor == head)
            .map(|slot| {
                slot.value
                    .clone()
                    .downcast::<A>()
                    .expect("cache slot type matches key")
            })
    }

    /// The cached `A`, if present (no computation, not counted as a hit).
    pub fn cached<A: Analysis>(&self) -> Option<Arc<A>> {
        self.slots[A::SLOT].as_ref().map(|slot| {
            slot.value
                .clone()
                .downcast::<A>()
                .expect("cache slot type matches key")
        })
    }

    fn put<A: Analysis>(&mut self, func: &Function, value: Arc<A>) {
        self.slots[A::SLOT] = Some(Slot {
            value,
            shape_only: A::SHAPE_ONLY,
            name: A::NAME,
            cursor: func.journal_head(),
        });
    }

    /// Stamps the cached `A` (if any) as valid for the function's current
    /// state — called after a reconciliation proves the entry survived.
    fn refresh_cursor<A: Analysis>(&mut self, head: JournalCursor) {
        if let Some(slot) = &mut self.slots[A::SLOT] {
            slot.cursor = head;
        }
    }

    /// Drops the cached `A`, if present.
    pub fn invalidate<A: Analysis>(&mut self) {
        self.slots[A::SLOT] = None;
    }

    /// Drops everything — required after any block/edge mutation whose
    /// provenance is unknown (tier 1; prefer
    /// [`AnalysisManager::update_after`] when the mutation journal covers
    /// the window).
    pub fn invalidate_all(&mut self) {
        self.slots = Default::default();
    }

    /// Forgets *everything tied to a function's journal identity* — cached
    /// entries, the observation cursor, the dominator checkpoint and the
    /// window memo — keeping only the historical computation counters.
    ///
    /// This is the containment path for abandoned windows: after a
    /// contained pipeline panic or budget cancellation the function is
    /// rolled back to a pre-pipeline snapshot under a *fresh* journal
    /// identity, so every anchor this manager holds describes an edit
    /// history that no longer exists. Stale cursors would merely saturate
    /// (safe but wasteful); the checkpoint and memo would be dead weight.
    /// A hard reset returns the manager to the cold state a fresh function
    /// expects, while the counters keep reporting what was truly spent.
    pub fn hard_reset(&mut self) {
        self.slots = Default::default();
        self.cursor = None;
        self.dom_checkpoint = None;
        self.tree_window_memo = None;
        self.edits_scratch.clear();
        self.touched_scratch.clear();
    }

    /// Drops the instruction-sensitive analyses, keeping shape-only ones —
    /// correct after instruction-level mutation that leaves the block graph
    /// intact (φ insertion, operand rewrites, instruction removal; tier 2).
    pub fn invalidate_values(&mut self) {
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|s| !s.shape_only) {
                *slot = None;
            }
        }
    }

    /// Anchors the manager's journal cursor at the function's current
    /// state, asserting that every cached entry is valid for it (the
    /// standing cache contract). Call once before a dirty-tracked driver
    /// starts interleaving mutations with [`AnalysisManager::update_after`].
    pub fn observe(&mut self, func: &Function) {
        let head = func.journal_head();
        self.cursor = Some(head);
        for slot in self.slots.iter_mut().flatten() {
            slot.cursor = head;
        }
    }

    /// Publishes a *repair checkpoint*: the dominator tree of the
    /// function's current state together with the journal cursor marking
    /// it. By storing one, the driver asserts the function is in valid,
    /// fully repaired SSA form right now — which lets the next SSA-repair
    /// run scope its very first broken-definition scan to the mutations
    /// and dominance changes since this point instead of sweeping the
    /// whole function.
    pub fn set_dom_checkpoint(&mut self, func: &Function, tree: Arc<DomTree>) {
        self.dom_checkpoint = Some((func.journal_head(), tree));
    }

    /// Consumes the pending repair checkpoint, if any.
    pub fn take_dom_checkpoint(&mut self) -> Option<(JournalCursor, Arc<DomTree>)> {
        self.dom_checkpoint.take()
    }

    /// Tier-3 invalidation: classifies the mutation window since the last
    /// [`observe`](AnalysisManager::observe)/`update_after` (an O(1) probe
    /// on the journal) and reconciles every cached entry with what
    /// actually changed — keeping entries untouched windows cannot have
    /// broken, updating dominator trees in place (including
    /// deletion-containing batches, via the affected-subtree rule),
    /// re-seeding liveness from the dirty blocks, and dropping the rest.
    ///
    /// Each entry is reconciled against *its own* window: slots remember
    /// the journal cursor of the state they were computed (or last
    /// validated) for, so an entry a transform recomputed mid-pass — after
    /// its internal invalidation — is never replayed against edits it
    /// already reflects. Wide windows and a saturated journal degrade to
    /// dropping; a missing manager cursor degrades to
    /// [`invalidate_all`](AnalysisManager::invalidate_all).
    ///
    /// Returns the classification of the *manager-level* window (since the
    /// last `observe`/`update_after`).
    pub fn update_after(&mut self, func: &Function) -> WindowProbe {
        let probe = match self.cursor {
            Some(cursor) => func.probe_since(cursor),
            None => WindowProbe::Saturated,
        };
        self.cursor = Some(func.journal_head());
        match probe {
            // Slots installed before the manager's window opened were
            // validated then; slots installed inside it are newer still —
            // a clean manager window keeps everything.
            WindowProbe::Clean => return probe,
            WindowProbe::Saturated => {
                self.invalidate_all();
                return probe;
            }
            _ => {}
        }
        // Eagerly reconcile every cached entry against its own window
        // (CFG first so the tree updates pull a valid snapshot through
        // the cache). Entries served unchanged do not count as hits here.
        self.reconcile::<Cfg>(func, false);
        self.reconcile::<DomTree>(func, false);
        self.reconcile::<PostDomTree>(func, false);
        self.reconcile::<LoopInfo>(func, false);
        self.reconcile::<Liveness>(func, false);
        self.reconcile::<DivergenceAnalysis>(func, false);
        probe
    }

    /// The journal-arbitrated analogue of
    /// [`retain`](AnalysisManager::retain), run by `journal_sync`
    /// pipelines (`darm-pipeline`) after every pass: entries the pass's
    /// [`PreservedAnalyses`] report vouches for are stamped valid for the
    /// current state (the pass proved it preserved them across its
    /// mutations); everything else keeps its old validity cursor and is
    /// reconciled *lazily* at its next query — where the journal keeps,
    /// updates in place, or drops it. The union is sound — an entry
    /// survives only if the report vouches for it or the journal proves
    /// its window harmless — and strictly finer than either side alone.
    ///
    /// `pass_start` is the journal cursor captured just before the pass
    /// ran: the report vouches for the `[pass_start, now)` window *only*,
    /// so an entry still carrying an older unreconciled window keeps its
    /// cursor and revalidates lazily instead of having that pending
    /// window silently erased.
    pub fn update_after_with_report(
        &mut self,
        func: &Function,
        preserved: &PreservedAnalyses,
        pass_start: JournalCursor,
    ) -> WindowProbe {
        let probe = match self.cursor {
            Some(cursor) => func.probe_since(cursor),
            None => WindowProbe::Saturated,
        };
        let head = func.journal_head();
        self.cursor = Some(head);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(slot) = slot {
                if slot.cursor == pass_start && preserved.keeps(i, slot.shape_only) {
                    slot.cursor = head;
                }
            }
        }
        probe
    }

    /// Applies a pass's [`PreservedAnalyses`] report: every cached entry
    /// not covered by the report is dropped.
    pub fn retain(&mut self, preserved: &PreservedAnalyses) {
        if preserved.preserves_all() {
            return;
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot
                .as_ref()
                .is_some_and(|s| !preserved.keeps(i, s.shape_only))
            {
                *slot = None;
            }
        }
    }

    /// How many times each analysis was computed (cache misses), in first-
    /// computed order. Cache hits do not count; the difference between
    /// queries and computations is the reuse the cache bought.
    pub fn computations(&self) -> &[(&'static str, usize)] {
        &self.computed
    }

    /// Total number of analysis computations (cache misses) so far.
    pub fn total_computations(&self) -> usize {
        self.counters.computes
    }

    /// Snapshot of the compute/hit/update totals.
    pub fn counters(&self) -> AnalysisCounters {
        self.counters
    }

    fn note_computed(&mut self, name: &'static str) {
        self.counters.computes += 1;
        match self.computed.iter_mut().find(|(n, _)| *n == name) {
            Some((_, n)) => *n += 1,
            None => self.computed.push((name, 1)),
        }
    }

    fn note_updated(&mut self, name: &'static str, deletion_batch: bool) {
        self.counters.updates += 1;
        if deletion_batch {
            self.counters.in_place_deletion_updates += 1;
        }
        match name {
            "cfg" => self.counters.in_place_cfg_updates += 1,
            "divergence" => self.counters.in_place_divergence_updates += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, InstData, Opcode, Type, Value};

    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        f
    }

    #[test]
    fn caches_and_shares_dependencies() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        let dt1 = am.get::<DomTree>(&f);
        let dt2 = am.get::<DomTree>(&f);
        assert!(Arc::ptr_eq(&dt1, &dt2));
        // DomTree computed the Cfg through the cache: exactly one compute of
        // each despite the repeated query.
        assert_eq!(am.computations(), &[("cfg", 1), ("domtree", 1)]);
        am.get::<DivergenceAnalysis>(&f);
        // Divergence pulls the post-dominator tree through the cache too.
        assert_eq!(am.total_computations(), 4);
        assert!(am.counters().hits >= 3);
    }

    #[test]
    fn value_invalidation_keeps_shape_analyses() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.get::<DivergenceAnalysis>(&f);
        am.get::<PostDomTree>(&f);
        am.invalidate_values();
        assert!(am.cached::<Cfg>().is_some());
        assert!(am.cached::<DomTree>().is_some());
        assert!(am.cached::<PostDomTree>().is_some());
        assert!(am.cached::<DivergenceAnalysis>().is_none());
        am.invalidate_all();
        assert!(am.cached::<Cfg>().is_none());
    }

    #[test]
    fn hard_reset_forgets_anchors_but_keeps_counters() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.observe(&f);
        let dt = am.get::<DomTree>(&f);
        am.set_dom_checkpoint(&f, dt);
        let computed = am.total_computations();
        assert!(computed > 0);
        am.hard_reset();
        assert!(am.cached::<Cfg>().is_none());
        assert!(am.cached::<DomTree>().is_none());
        assert!(am.take_dom_checkpoint().is_none());
        // Historical stats survive: the reset forgets state, not spend.
        assert_eq!(am.total_computations(), computed);
        // The manager is usable from cold afterwards.
        am.get::<DomTree>(&f);
        assert!(am.cached::<DomTree>().is_some());
    }

    #[test]
    fn retain_applies_preservation_report() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.get::<DivergenceAnalysis>(&f);
        am.retain(&PreservedAnalyses::all());
        assert!(am.cached::<DivergenceAnalysis>().is_some());
        am.retain(&PreservedAnalyses::cfg_shape());
        assert!(am.cached::<Cfg>().is_some());
        assert!(am.cached::<DivergenceAnalysis>().is_none());
        am.retain(&PreservedAnalyses::none().preserve::<Cfg>());
        assert!(am.cached::<Cfg>().is_some());
        assert!(am.cached::<DomTree>().is_none());
    }

    #[test]
    fn update_after_keeps_everything_on_clean_window() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.observe(&f);
        am.get::<DivergenceAnalysis>(&f);
        am.get::<Liveness>(&f);
        let before = am.total_computations();
        let probe = am.update_after(&f);
        assert_eq!(probe, WindowProbe::Clean);
        assert!(am.cached::<DivergenceAnalysis>().is_some());
        assert!(am.cached::<Liveness>().is_some());
        assert_eq!(am.total_computations(), before);
    }

    #[test]
    fn update_after_inst_only_window_keeps_shape() {
        let mut f = diamond();
        // Pad the function above the divergence refresh's profitability
        // floor: on genuinely tiny functions the refresh rightly declines
        // in favor of the fresh sweep, and this test pins the in-place
        // path itself.
        let entry = f.entry();
        for _ in 0..64 {
            f.insert_inst_at(
                entry,
                0,
                InstData::new(Opcode::Add, Type::I32, vec![Value::I32(1), Value::I32(2)]),
            );
        }
        let mut am = AnalysisManager::new();
        am.observe(&f);
        let dt = am.get::<DomTree>(&f);
        am.get::<DivergenceAnalysis>(&f);
        am.get::<Liveness>(&f);
        // Instruction-only mutation: insert a dead add in `t`.
        let t = f.block_ids()[1];
        f.insert_inst_at(
            t,
            0,
            InstData::new(Opcode::Add, Type::I32, vec![Value::I32(1), Value::I32(2)]),
        );
        let probe = am.update_after(&f);
        assert!(matches!(probe, WindowProbe::InstsOnly { .. }));
        assert!(
            Arc::ptr_eq(&dt, &am.cached::<DomTree>().unwrap()),
            "shape analyses survive an instruction-only window"
        );
        // Divergence was re-derived over the changed closure, in place.
        let div = am
            .cached::<DivergenceAnalysis>()
            .expect("divergence updated in place");
        let fresh_cfg = Cfg::new(&f);
        let fresh_dt = DomTree::new(&f, &fresh_cfg);
        let fresh_div = DivergenceAnalysis::run(&f, &fresh_cfg, &fresh_dt);
        for i in 0..f.inst_capacity() {
            let id = darm_ir::InstId::new(i);
            assert_eq!(div.is_inst_divergent(id), fresh_div.is_inst_divergent(id));
        }
        for b in f.block_ids() {
            assert_eq!(div.is_divergent_branch(b), fresh_div.is_divergent_branch(b));
        }
        // Liveness was refreshed in place, and matches a fresh compute.
        let live = am.cached::<Liveness>().expect("liveness updated in place");
        let fresh = Liveness::new(&f);
        for b in f.block_ids() {
            assert_eq!(live.live_in(b), fresh.live_in(b));
            assert_eq!(live.live_out(b), fresh.live_out(b));
        }
        assert_eq!(am.counters().updates, 2);
        assert_eq!(am.counters().in_place_divergence_updates, 1);
    }

    #[test]
    fn update_after_without_observe_degrades_to_full_invalidation() {
        let mut f = diamond();
        let mut am = AnalysisManager::new();
        am.get::<DomTree>(&f);
        let t = f.block_ids()[1];
        let term = f.terminator(t).unwrap();
        f.remove_inst(term);
        let probe = am.update_after(&f);
        assert_eq!(probe, WindowProbe::Saturated);
        assert!(am.cached::<DomTree>().is_none());
        assert!(am.cached::<Cfg>().is_none());
    }
}
