//! Cached analysis management with invalidation — the analogue of LLVM's
//! `FunctionAnalysisManager` for the pass pipeline in `darm-pipeline`.
//!
//! Every analysis in this crate is a pure function of the IR: recomputing it
//! on an unchanged [`Function`] yields an equal value. The
//! [`AnalysisManager`] exploits that by memoizing results keyed by analysis
//! *type* and handing out shared [`Rc`] references, so a fixpoint driver
//! that runs many queries (and many passes) against one CFG state computes
//! each analysis at most once.
//!
//! Invalidation is explicit and two-tiered:
//!
//! * **CFG-shape changes** (blocks or edges added/removed) invalidate
//!   everything — use [`AnalysisManager::invalidate_all`].
//! * **Instruction-only changes** (φ insertion, peepholes, DCE) preserve
//!   the block graph, so [`Cfg`], [`DomTree`], [`PostDomTree`] and
//!   [`LoopInfo`] survive — use
//!   [`AnalysisManager::invalidate_values`], which drops only the
//!   instruction-sensitive analyses ([`DivergenceAnalysis`], [`Liveness`]).
//!
//! Transform passes report what they preserved through
//! [`PreservedAnalyses`]; a pass manager applies the report with
//! [`AnalysisManager::retain`]. The transforms in `darm-transforms` also
//! invalidate *during* their run (they interleave queries with mutation),
//! so `retain` acts as a second, coarser filter — it can only drop entries,
//! never resurrect stale ones.

use crate::cfg::Cfg;
use crate::divergence::DivergenceAnalysis;
use crate::dom::{DomTree, PostDomTree};
use crate::liveness::Liveness;
use crate::loops::LoopInfo;
use darm_ir::Function;
use std::any::Any;
use std::rc::Rc;

/// Number of cache slots — one per registered [`Analysis`] impl.
const SLOT_COUNT: usize = 6;

/// A cacheable analysis over a [`Function`].
///
/// `compute` receives the manager so dependent analyses come from the same
/// cache (e.g. [`DomTree`] pulls the cached [`Cfg`]). Implementations must
/// be pure: equal IR must produce an equal (observationally) result.
///
/// The cache is keyed by analysis type through `SLOT`, a dense per-type
/// index (cheaper than hashing a `TypeId` on the pipeline's hot path);
/// every implementation must pick a distinct slot below `SLOT_COUNT`.
pub trait Analysis: Sized + 'static {
    /// Short stable name, used in reports and error messages.
    const NAME: &'static str;

    /// Whether the result depends only on the block graph (blocks + edges),
    /// not on non-terminator instructions. Shape-only analyses survive
    /// instruction-level invalidation.
    const SHAPE_ONLY: bool;

    /// Unique dense cache-slot index of this analysis type.
    const SLOT: usize;

    /// Computes the analysis for the current state of `func`.
    fn compute(func: &Function, am: &mut AnalysisManager) -> Self;
}

impl Analysis for Cfg {
    const NAME: &'static str = "cfg";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 0;

    fn compute(func: &Function, _am: &mut AnalysisManager) -> Cfg {
        Cfg::new(func)
    }
}

impl Analysis for DomTree {
    const NAME: &'static str = "domtree";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 1;

    fn compute(func: &Function, am: &mut AnalysisManager) -> DomTree {
        let cfg = am.get::<Cfg>(func);
        DomTree::new(func, &cfg)
    }
}

impl Analysis for PostDomTree {
    const NAME: &'static str = "postdomtree";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 2;

    fn compute(func: &Function, am: &mut AnalysisManager) -> PostDomTree {
        let cfg = am.get::<Cfg>(func);
        PostDomTree::new(func, &cfg)
    }
}

impl Analysis for LoopInfo {
    const NAME: &'static str = "loops";
    const SHAPE_ONLY: bool = true;
    const SLOT: usize = 3;

    fn compute(func: &Function, am: &mut AnalysisManager) -> LoopInfo {
        let cfg = am.get::<Cfg>(func);
        let dt = am.get::<DomTree>(func);
        LoopInfo::new(&cfg, &dt)
    }
}

impl Analysis for DivergenceAnalysis {
    const NAME: &'static str = "divergence";
    const SHAPE_ONLY: bool = false;
    const SLOT: usize = 4;

    fn compute(func: &Function, am: &mut AnalysisManager) -> DivergenceAnalysis {
        let cfg = am.get::<Cfg>(func);
        let dt = am.get::<DomTree>(func);
        DivergenceAnalysis::run(func, &cfg, &dt)
    }
}

impl Analysis for Liveness {
    const NAME: &'static str = "liveness";
    const SHAPE_ONLY: bool = false;
    const SLOT: usize = 5;

    fn compute(func: &Function, am: &mut AnalysisManager) -> Liveness {
        let cfg = am.get::<Cfg>(func);
        Liveness::with_cfg(func, &cfg)
    }
}

/// What a transform pass left intact, reported to the pass manager.
///
/// Construct with [`PreservedAnalyses::all`] (nothing changed),
/// [`PreservedAnalyses::none`] (CFG shape changed) or
/// [`PreservedAnalyses::cfg_shape`] (instructions changed, block graph
/// intact), then refine with [`preserve`](PreservedAnalyses::preserve).
#[derive(Debug, Clone, Default)]
pub struct PreservedAnalyses {
    all: bool,
    shape: bool,
    extra: [bool; SLOT_COUNT],
}

impl PreservedAnalyses {
    /// The pass changed nothing analyses care about: keep everything.
    pub fn all() -> PreservedAnalyses {
        PreservedAnalyses {
            all: true,
            ..PreservedAnalyses::default()
        }
    }

    /// The pass changed the block graph: keep nothing.
    pub fn none() -> PreservedAnalyses {
        PreservedAnalyses::default()
    }

    /// The pass changed instructions but not the block graph: keep the
    /// shape-only analyses (CFG, dominators, post-dominators, loops).
    pub fn cfg_shape() -> PreservedAnalyses {
        PreservedAnalyses {
            all: false,
            shape: true,
            ..PreservedAnalyses::default()
        }
    }

    /// Additionally preserve analysis `A`.
    pub fn preserve<A: Analysis>(mut self) -> PreservedAnalyses {
        self.extra[A::SLOT] = true;
        self
    }

    /// Whether everything is preserved.
    pub fn preserves_all(&self) -> bool {
        self.all
    }

    /// Whether the entry in `slot` (with the given shape-only flag)
    /// survives this report.
    fn keeps(&self, slot: usize, shape_only: bool) -> bool {
        self.all || (self.shape && shape_only) || self.extra[slot]
    }
}

/// One cache slot: the result plus its shape-only flag and name (captured
/// at insertion so [`AnalysisManager::retain`] can filter without knowing
/// the concrete types).
struct Slot {
    value: Rc<dyn Any>,
    shape_only: bool,
    name: &'static str,
}

/// Memoizing analysis cache keyed by analysis type (via the dense
/// [`Analysis::SLOT`] index). See the module docs for the invalidation
/// contract.
#[derive(Default)]
pub struct AnalysisManager {
    slots: [Option<Slot>; SLOT_COUNT],
    computed: Vec<(&'static str, usize)>,
}

impl std::fmt::Debug for AnalysisManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached: Vec<&str> = self.slots.iter().flatten().map(|s| s.name).collect();
        f.debug_struct("AnalysisManager")
            .field("cached", &cached)
            .field("computed", &self.computed)
            .finish()
    }
}

impl AnalysisManager {
    /// An empty cache.
    pub fn new() -> AnalysisManager {
        AnalysisManager::default()
    }

    /// Returns analysis `A` for the current state of `func`, computing and
    /// caching it if absent.
    pub fn get<A: Analysis>(&mut self, func: &Function) -> Rc<A> {
        if let Some(slot) = &self.slots[A::SLOT] {
            return slot
                .value
                .clone()
                .downcast::<A>()
                .expect("cache slot type matches key");
        }
        let value = Rc::new(A::compute(func, self));
        self.note_computed(A::NAME);
        self.slots[A::SLOT] = Some(Slot {
            value: value.clone(),
            shape_only: A::SHAPE_ONLY,
            name: A::NAME,
        });
        value
    }

    /// The cached `A`, if present (no computation).
    pub fn cached<A: Analysis>(&self) -> Option<Rc<A>> {
        self.slots[A::SLOT].as_ref().map(|slot| {
            slot.value
                .clone()
                .downcast::<A>()
                .expect("cache slot type matches key")
        })
    }

    /// Drops the cached `A`, if present.
    pub fn invalidate<A: Analysis>(&mut self) {
        self.slots[A::SLOT] = None;
    }

    /// Drops everything — required after any block/edge mutation.
    pub fn invalidate_all(&mut self) {
        self.slots = Default::default();
    }

    /// Drops the instruction-sensitive analyses, keeping shape-only ones —
    /// correct after instruction-level mutation that leaves the block graph
    /// intact (φ insertion, operand rewrites, instruction removal).
    pub fn invalidate_values(&mut self) {
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|s| !s.shape_only) {
                *slot = None;
            }
        }
    }

    /// Applies a pass's [`PreservedAnalyses`] report: every cached entry
    /// not covered by the report is dropped.
    pub fn retain(&mut self, preserved: &PreservedAnalyses) {
        if preserved.preserves_all() {
            return;
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot
                .as_ref()
                .is_some_and(|s| !preserved.keeps(i, s.shape_only))
            {
                *slot = None;
            }
        }
    }

    /// How many times each analysis was computed (cache misses), in first-
    /// computed order. Cache hits do not count; the difference between
    /// queries and computations is the reuse the cache bought.
    pub fn computations(&self) -> &[(&'static str, usize)] {
        &self.computed
    }

    /// Total number of analysis computations (cache misses) so far.
    pub fn total_computations(&self) -> usize {
        self.computed.iter().map(|&(_, n)| n).sum()
    }

    fn note_computed(&mut self, name: &'static str) {
        match self.computed.iter_mut().find(|(n, _)| *n == name) {
            Some((_, n)) => *n += 1,
            None => self.computed.push((name, 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, Type, Value};

    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        f
    }

    #[test]
    fn caches_and_shares_dependencies() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        let dt1 = am.get::<DomTree>(&f);
        let dt2 = am.get::<DomTree>(&f);
        assert!(Rc::ptr_eq(&dt1, &dt2));
        // DomTree computed the Cfg through the cache: exactly one compute of
        // each despite the repeated query.
        assert_eq!(am.computations(), &[("cfg", 1), ("domtree", 1)]);
        am.get::<DivergenceAnalysis>(&f);
        assert_eq!(am.total_computations(), 3);
    }

    #[test]
    fn value_invalidation_keeps_shape_analyses() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.get::<DivergenceAnalysis>(&f);
        am.get::<PostDomTree>(&f);
        am.invalidate_values();
        assert!(am.cached::<Cfg>().is_some());
        assert!(am.cached::<DomTree>().is_some());
        assert!(am.cached::<PostDomTree>().is_some());
        assert!(am.cached::<DivergenceAnalysis>().is_none());
        am.invalidate_all();
        assert!(am.cached::<Cfg>().is_none());
    }

    #[test]
    fn retain_applies_preservation_report() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.get::<DivergenceAnalysis>(&f);
        am.retain(&PreservedAnalyses::all());
        assert!(am.cached::<DivergenceAnalysis>().is_some());
        am.retain(&PreservedAnalyses::cfg_shape());
        assert!(am.cached::<Cfg>().is_some());
        assert!(am.cached::<DivergenceAnalysis>().is_none());
        am.retain(&PreservedAnalyses::none().preserve::<Cfg>());
        assert!(am.cached::<Cfg>().is_some());
        assert!(am.cached::<DomTree>().is_none());
    }
}
