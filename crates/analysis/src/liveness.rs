//! Liveness analysis and register-pressure estimation.
//!
//! Melding trades divergence for straight-line code whose values from both
//! paths are live simultaneously — a known register-pressure cost of
//! if-conversion-style transformations. This module computes classic
//! backward liveness over the SSA function and a per-block pressure
//! estimate, so the trade-off can be measured (see the
//! `melding_pressure_tradeoff` integration test).

use crate::cfg::Cfg;
use darm_ir::{BlockId, Function, InstId, Opcode, Value};
use std::collections::HashSet;

/// Live-in/live-out sets per block, over instruction results.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<InstId>>,
    live_out: Vec<HashSet<InstId>>,
}

impl Liveness {
    /// Computes liveness by backward iteration to a fixpoint.
    ///
    /// φ semantics: a φ's operands are treated as used at the end of the
    /// corresponding predecessor (the standard SSA convention), and the φ
    /// result is defined at the top of its block.
    pub fn new(func: &Function) -> Liveness {
        let cfg = Cfg::new(func);
        let n = func.block_capacity();
        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];

        // Upward-exposed uses and defs per block; φ operand uses are
        // attributed to the end of the incoming predecessor.
        let mut ue_uses = vec![HashSet::new(); n];
        let mut phi_out_uses = vec![HashSet::new(); n];
        let mut defs = vec![HashSet::new(); n];
        for &b in cfg.rpo() {
            for &id in func.insts_of(b) {
                let inst = func.inst(id);
                if inst.opcode == Opcode::Phi {
                    for (pred, v) in inst.phi_incoming() {
                        if let Value::Inst(d) = v {
                            phi_out_uses[pred.index()].insert(d);
                        }
                    }
                } else {
                    for &op in &inst.operands {
                        if let Value::Inst(d) = op {
                            if !defs[b.index()].contains(&d) {
                                ue_uses[b.index()].insert(d);
                            }
                        }
                    }
                }
                if inst.ty != darm_ir::Type::Void {
                    defs[b.index()].insert(id);
                }
            }
        }

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().rev() {
                // live-out = φ-attributed uses ∪ union of successors' live-in.
                let mut out: HashSet<InstId> = phi_out_uses[b.index()].clone();
                for &s in cfg.succs(b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                // live-in = (live-out − defs) ∪ upward-exposed uses.
                let mut inn: HashSet<InstId> =
                    out.difference(&defs[b.index()]).copied().collect();
                inn.extend(ue_uses[b.index()].iter().copied());
                if inn != live_in[b.index()] || out != live_out[b.index()] {
                    live_in[b.index()] = inn;
                    live_out[b.index()] = out;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Values live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &HashSet<InstId> {
        &self.live_in[b.index()]
    }

    /// Values live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &HashSet<InstId> {
        &self.live_out[b.index()]
    }
}

/// Maximum number of simultaneously-live values across all program points —
/// a simple register-pressure proxy.
pub fn max_pressure(func: &Function) -> usize {
    let live = Liveness::new(func);
    let cfg = Cfg::new(func);
    let mut max = 0;
    for &b in cfg.rpo() {
        let mut current: HashSet<InstId> = live.live_out(b).clone();
        max = max.max(current.len());
        // Walk backwards through the block.
        for &id in func.insts_of(b).iter().rev() {
            current.remove(&id);
            let inst = func.inst(id);
            if inst.opcode != Opcode::Phi {
                for &op in &inst.operands {
                    if let Value::Inst(d) = op {
                        current.insert(d);
                    }
                }
            }
            max = max.max(current.len());
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    #[test]
    fn straightline_liveness() {
        let mut f = Function::new("sl", vec![], Type::I32);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        let x = b.add(tid, tid);
        let y = b.mul(x, x);
        b.ret(Some(y));
        let live = Liveness::new(&f);
        assert!(live.live_in(e).is_empty());
        assert!(live.live_out(e).is_empty());
        assert!(max_pressure(&f) >= 1);
    }

    #[test]
    fn value_live_across_branch() {
        // v defined in entry, used in both arms: live-in of both arms.
        let mut f = Function::new("br", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e2 = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let v = b.add(b.param(0), b.const_i32(1));
        let c = b.icmp(IcmpPred::Slt, v, b.const_i32(0));
        b.br(c, t, e2);
        b.switch_to(t);
        let a = b.mul(v, b.const_i32(2));
        b.jump(x);
        b.switch_to(e2);
        let d = b.mul(v, b.const_i32(3));
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, a), (e2, d)]);
        b.ret(Some(p));

        let live = Liveness::new(&f);
        let v_id = v.as_inst().unwrap();
        assert!(live.live_in(t).contains(&v_id));
        assert!(live.live_in(e2).contains(&v_id));
        assert!(!live.live_in(x).contains(&v_id));
        // φ operands are live-out of their predecessors
        assert!(live.live_out(t).contains(&a.as_inst().unwrap()));
        assert!(live.live_out(e2).contains(&d.as_inst().unwrap()));
    }

    #[test]
    fn loop_carried_value_stays_live() {
        let mut f = Function::new("lp", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let hdr = f.add_block("hdr");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.jump(hdr);
        b.switch_to(hdr);
        let i = b.phi(Type::I32, &[(entry, darm_ir::Value::I32(0))]);
        let c = b.icmp(IcmpPred::Slt, i, b.param(0));
        b.br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add(i, b.const_i32(1));
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(Some(i));
        let pi = i.as_inst().unwrap();
        f.inst_mut(pi).operands.push(i2);
        f.inst_mut(pi).phi_blocks.push(body);

        let live = Liveness::new(&f);
        // i is live around the loop: live-in of body and exit.
        assert!(live.live_in(body).contains(&pi));
        assert!(live.live_in(exit).contains(&pi));
    }
}
