//! Liveness analysis and register-pressure estimation.
//!
//! Melding trades divergence for straight-line code whose values from both
//! paths are live simultaneously — a known register-pressure cost of
//! if-conversion-style transformations. This module computes classic
//! backward liveness over the SSA function and a per-block pressure
//! estimate, so the trade-off can be measured (see the
//! `melding_pressure_tradeoff` integration test).
//!
//! Live sets are dense bitsets over instruction ids ([`InstSet`]) rather
//! than hash sets: iteration order is deterministic (ascending id), set
//! union in the dataflow fixpoint is word-parallel, and membership queries
//! are O(1) with no hashing.

use crate::cfg::Cfg;
use darm_ir::{BlockId, Function, InstId, Opcode, Value};

/// A set of [`InstId`]s backed by a fixed-capacity bitset.
///
/// Iteration yields ids in ascending order, so any consumer that prints or
/// folds over a live set is deterministic across runs.
#[derive(Debug, Clone)]
pub struct InstSet {
    words: Vec<u64>,
}

/// Element-wise equality: trailing zero words don't count, so two sets
/// holding the same ids compare equal even when `insert` auto-grew one of
/// their backing vectors.
impl PartialEq for InstSet {
    fn eq(&self, other: &InstSet) -> bool {
        let (short, long) = if self.words.len() <= other.words.len() {
            (self, other)
        } else {
            (other, self)
        };
        short.words.iter().zip(&long.words).all(|(a, b)| a == b)
            && long.words[short.words.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for InstSet {}

impl InstSet {
    /// An empty set able to hold ids `0..capacity`.
    pub fn with_capacity(capacity: usize) -> InstSet {
        InstSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: InstId) -> bool {
        let i = id.index();
        match self.words.get(i / 64) {
            Some(w) => w & (1 << (i % 64)) != 0,
            None => false,
        }
    }

    /// Inserts `id`; returns whether it was newly added.
    pub fn insert(&mut self, id: InstId) -> bool {
        let i = id.index();
        if i / 64 >= self.words.len() {
            self.words.resize(i / 64 + 1, 0);
        }
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Removes `id` if present.
    pub fn remove(&mut self, id: InstId) {
        let i = id.index();
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1 << (i % 64));
        }
    }

    /// Adds every element of `other`; returns whether the set grew.
    pub fn union_with(&mut self, other: &InstSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut grew = false;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            let merged = *w | o;
            grew |= merged != *w;
            *w = merged;
        }
        grew
    }

    /// Removes every element of `other`.
    pub fn subtract(&mut self, other: &InstSet) {
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The elements in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = InstId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(InstId::new(wi * 64 + bit as usize))
            })
        })
    }
}

/// Live-in/live-out sets per block, over instruction results.
///
/// The per-block transfer sets (upward-exposed uses, φ-attributed uses,
/// definitions) are retained alongside the solution, so an
/// instruction-only mutation window can be folded in by rescanning just
/// the dirty blocks ([`Liveness::updated`]) instead of the whole function.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<InstSet>,
    live_out: Vec<InstSet>,
    ue_uses: Vec<InstSet>,
    phi_out_uses: Vec<InstSet>,
    defs: Vec<InstSet>,
}

impl Liveness {
    /// Computes liveness by backward iteration to a fixpoint.
    ///
    /// φ semantics: a φ's operands are treated as used at the end of the
    /// corresponding predecessor (the standard SSA convention), and the φ
    /// result is defined at the top of its block.
    pub fn new(func: &Function) -> Liveness {
        Liveness::with_cfg(func, &Cfg::new(func))
    }

    /// [`Liveness::new`] against a caller-provided CFG snapshot (e.g. from
    /// an [`AnalysisManager`](crate::manager::AnalysisManager)).
    pub fn with_cfg(func: &Function, cfg: &Cfg) -> Liveness {
        let n = func.block_capacity();
        let cap = func.inst_capacity();
        let empty = InstSet::with_capacity(cap);

        // Upward-exposed uses and defs per block; φ operand uses are
        // attributed to the end of the incoming predecessor.
        let mut ue_uses = vec![empty.clone(); n];
        let mut phi_out_uses = vec![empty.clone(); n];
        let mut defs = vec![empty; n];
        for &b in cfg.rpo() {
            scan_block(func, b, &mut ue_uses, &mut phi_out_uses, &mut defs);
        }
        let mut live = Liveness {
            live_in: Vec::new(),
            live_out: Vec::new(),
            ue_uses,
            phi_out_uses,
            defs,
        };
        live.solve(cfg, cap);
        live
    }

    /// Re-solves the dataflow fixpoint from the current transfer sets.
    fn solve(&mut self, cfg: &Cfg, inst_cap: usize) {
        let n = self.ue_uses.len();
        let empty = InstSet::with_capacity(inst_cap);
        self.live_in = vec![empty.clone(); n];
        self.live_out = vec![empty; n];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().rev() {
                // live-out = φ-attributed uses ∪ union of successors' live-in.
                let mut out = self.phi_out_uses[b.index()].clone();
                for &s in cfg.succs(b) {
                    out.union_with(&self.live_in[s.index()]);
                }
                // live-in = (live-out − defs) ∪ upward-exposed uses.
                let mut inn = out.clone();
                inn.subtract(&self.defs[b.index()]);
                inn.union_with(&self.ue_uses[b.index()]);
                if inn != self.live_in[b.index()] || out != self.live_out[b.index()] {
                    self.live_in[b.index()] = inn;
                    self.live_out[b.index()] = out;
                    changed = true;
                }
            }
        }
    }

    /// Folds an *instruction-only* mutation window into the solution: the
    /// transfer sets of the dirty blocks (and the φ-attribution rows of
    /// their predecessors) are rescanned, everything else is reused, and
    /// the fixpoint re-solves on the word-parallel bitsets. The result
    /// equals a fresh [`Liveness::with_cfg`] on the mutated function —
    /// callers guarantee the block graph is unchanged (`cfg` still valid).
    pub fn updated(&self, func: &Function, cfg: &Cfg, dirty: &darm_ir::BlockSet) -> Liveness {
        let cap = func.inst_capacity();
        let empty = InstSet::with_capacity(cap);
        let mut next = self.clone();
        // Rows needing a rescan: dirty blocks for uses/defs, plus any block
        // with a dirty successor for the φ-attributed uses (φs in the dirty
        // successor attribute uses to the predecessor's exit).
        let mut rescan: Vec<BlockId> = dirty.iter().filter(|&b| func.is_block_alive(b)).collect();
        for b in dirty.iter() {
            if !func.is_block_alive(b) {
                continue;
            }
            for &p in cfg.preds(b) {
                rescan.push(p);
            }
        }
        rescan.sort_unstable();
        rescan.dedup();
        for &b in &rescan {
            next.ue_uses[b.index()] = empty.clone();
            next.phi_out_uses[b.index()] = empty.clone();
            next.defs[b.index()] = empty.clone();
        }
        // A rescanned block rebuilds its own use/def rows; its successors'
        // φs rebuild the φ-attribution row. Scanning a block writes only
        // its own ue/defs rows and φ-rows of predecessors, so scanning the
        // rescan set plus the φ-contributions of dirty-block successors
        // reconstructs every cleared row exactly.
        let mut scanned = vec![false; func.block_capacity()];
        for &b in &rescan {
            scanned[b.index()] = true;
            scan_block(
                func,
                b,
                &mut next.ue_uses,
                &mut next.phi_out_uses,
                &mut next.defs,
            );
        }
        // φ-rows of rescanned blocks also receive contributions from clean
        // successors; rebuild those contributions without touching the
        // clean blocks' own rows.
        for &b in &rescan {
            for &s in cfg.succs(b) {
                if scanned[s.index()] {
                    continue;
                }
                for &id in func.insts_of(s) {
                    let inst = func.inst(id);
                    if inst.opcode != Opcode::Phi {
                        break;
                    }
                    for (pred, v) in inst.phi_incoming() {
                        if pred == b {
                            if let Value::Inst(d) = v {
                                next.phi_out_uses[b.index()].insert(d);
                            }
                        }
                    }
                }
            }
        }
        next.solve(cfg, cap);
        next
    }

    /// Values live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &InstSet {
        &self.live_in[b.index()]
    }

    /// Values live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &InstSet {
        &self.live_out[b.index()]
    }
}

/// Accumulates one block's liveness transfer contributions: its own
/// upward-exposed uses and defs, plus φ-attributed uses into the rows of
/// its predecessors.
fn scan_block(
    func: &Function,
    b: BlockId,
    ue_uses: &mut [InstSet],
    phi_out_uses: &mut [InstSet],
    defs: &mut [InstSet],
) {
    for &id in func.insts_of(b) {
        let inst = func.inst(id);
        if inst.opcode == Opcode::Phi {
            for (pred, v) in inst.phi_incoming() {
                if let Value::Inst(d) = v {
                    phi_out_uses[pred.index()].insert(d);
                }
            }
        } else {
            for &op in &inst.operands {
                if let Value::Inst(d) = op {
                    if !defs[b.index()].contains(d) {
                        ue_uses[b.index()].insert(d);
                    }
                }
            }
        }
        if inst.ty != darm_ir::Type::Void {
            defs[b.index()].insert(id);
        }
    }
}

/// Maximum number of simultaneously-live values across all program points —
/// a simple register-pressure proxy.
pub fn max_pressure(func: &Function) -> usize {
    let cfg = Cfg::new(func);
    let live = Liveness::with_cfg(func, &cfg);
    let mut max = 0;
    for &b in cfg.rpo() {
        let mut current = live.live_out(b).clone();
        max = max.max(current.len());
        // Walk backwards through the block.
        for &id in func.insts_of(b).iter().rev() {
            current.remove(id);
            let inst = func.inst(id);
            if inst.opcode != Opcode::Phi {
                for &op in &inst.operands {
                    if let Value::Inst(d) = op {
                        current.insert(d);
                    }
                }
            }
            max = max.max(current.len());
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    #[test]
    fn inst_set_basics() {
        let mut s = InstSet::with_capacity(4);
        assert!(s.is_empty());
        assert!(s.insert(InstId::new(3)));
        assert!(s.insert(InstId::new(100))); // beyond initial capacity
        assert!(!s.insert(InstId::new(3)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(InstId::new(3)));
        assert!(!s.contains(InstId::new(4)));
        let ids: Vec<usize> = s.iter().map(InstId::index).collect();
        assert_eq!(
            ids,
            vec![3, 100],
            "iteration is ascending and deterministic"
        );
        s.remove(InstId::new(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn inst_set_equality_ignores_capacity() {
        let mut grown = InstSet::with_capacity(4);
        grown.insert(InstId::new(100)); // auto-grows the word vector
        grown.remove(InstId::new(100));
        grown.insert(InstId::new(2));
        let mut small = InstSet::with_capacity(4);
        small.insert(InstId::new(2));
        assert_eq!(grown, small);
        assert_eq!(small, grown);
        small.insert(InstId::new(3));
        assert_ne!(grown, small);
        assert_eq!(InstSet::with_capacity(0), InstSet::with_capacity(64));
    }

    #[test]
    fn straightline_liveness() {
        let mut f = Function::new("sl", vec![], Type::I32);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        let x = b.add(tid, tid);
        let y = b.mul(x, x);
        b.ret(Some(y));
        let live = Liveness::new(&f);
        assert!(live.live_in(e).is_empty());
        assert!(live.live_out(e).is_empty());
        assert!(max_pressure(&f) >= 1);
    }

    #[test]
    fn value_live_across_branch() {
        // v defined in entry, used in both arms: live-in of both arms.
        let mut f = Function::new("br", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e2 = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let v = b.add(b.param(0), b.const_i32(1));
        let c = b.icmp(IcmpPred::Slt, v, b.const_i32(0));
        b.br(c, t, e2);
        b.switch_to(t);
        let a = b.mul(v, b.const_i32(2));
        b.jump(x);
        b.switch_to(e2);
        let d = b.mul(v, b.const_i32(3));
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, a), (e2, d)]);
        b.ret(Some(p));

        let live = Liveness::new(&f);
        let v_id = v.as_inst().unwrap();
        assert!(live.live_in(t).contains(v_id));
        assert!(live.live_in(e2).contains(v_id));
        assert!(!live.live_in(x).contains(v_id));
        // φ operands are live-out of their predecessors
        assert!(live.live_out(t).contains(a.as_inst().unwrap()));
        assert!(live.live_out(e2).contains(d.as_inst().unwrap()));
    }

    #[test]
    fn loop_carried_value_stays_live() {
        let mut f = Function::new("lp", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let hdr = f.add_block("hdr");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.jump(hdr);
        b.switch_to(hdr);
        let i = b.phi(Type::I32, &[(entry, darm_ir::Value::I32(0))]);
        let c = b.icmp(IcmpPred::Slt, i, b.param(0));
        b.br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add(i, b.const_i32(1));
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(Some(i));
        let pi = i.as_inst().unwrap();
        f.inst_mut(pi).operands.push(i2);
        f.inst_mut(pi).phi_blocks.push(body);

        let live = Liveness::new(&f);
        // i is live around the loop: live-in of body and exit.
        assert!(live.live_in(body).contains(pi));
        assert!(live.live_in(exit).contains(pi));
    }
}
