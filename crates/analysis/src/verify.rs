//! Full SSA verification: structural checks plus dominance of definitions
//! over uses. Run after every transformation in tests; melding bugs show up
//! here first.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use darm_ir::{Function, IrError, Opcode, Value};

/// Verifies structural invariants ([`Function::verify_structure`]) and the
/// SSA dominance property:
///
/// * a non-φ use must be dominated by its definition (same-block uses must
///   come after the definition),
/// * a φ incoming value must dominate the terminator of its incoming block.
///
/// Unreachable blocks are ignored (dominance is undefined there), matching
/// LLVM's verifier behaviour.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_ssa(func: &Function) -> Result<(), IrError> {
    func.verify_structure()?;
    let cfg = Cfg::new(func);
    let dt = DomTree::new(func, &cfg);

    // Per-block instruction positions for same-block ordering checks.
    let mut pos = vec![usize::MAX; func.inst_capacity()];
    for &b in cfg.rpo() {
        for (k, &id) in func.insts_of(b).iter().enumerate() {
            pos[id.index()] = k;
        }
    }

    for &b in cfg.rpo() {
        for &id in func.insts_of(b) {
            let inst = func.inst(id);
            if inst.opcode == Opcode::Phi {
                for (pred, val) in inst.phi_incoming() {
                    let Value::Inst(def) = val else { continue };
                    let def_block = func.inst(def).block;
                    if !cfg.is_reachable(pred) {
                        continue;
                    }
                    if !dt.dominates(def_block, pred) {
                        return Err(IrError::SsaViolation(format!(
                            "phi %{} in {}: incoming %{} (defined in {}) does not dominate pred {}",
                            id.index(),
                            func.block_name(b),
                            def.index(),
                            func.block_name(def_block),
                            func.block_name(pred)
                        )));
                    }
                }
            } else {
                for &op in &inst.operands {
                    let Value::Inst(def) = op else { continue };
                    let def_block = func.inst(def).block;
                    let ok = if def_block == b {
                        pos[def.index()] < pos[id.index()]
                    } else {
                        dt.dominates(def_block, b)
                    };
                    if !ok {
                        return Err(IrError::SsaViolation(format!(
                            "%{} in {} uses %{} (defined in {}) which does not dominate it",
                            id.index(),
                            func.block_name(b),
                            def.index(),
                            func.block_name(def_block)
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, InstData, Type};

    #[test]
    fn accepts_valid_function() {
        let mut f = Function::new("ok", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let a = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, a), (e, Value::I32(0))]);
        b.ret(Some(p));
        use darm_ir::Value;
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut f = Function::new("bad", vec![], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let one = b.const_i32(1);
        let x = b.add(one, one);
        let _y = b.add(x, one);
        b.ret(None);
        // swap the two adds so the use precedes the def
        let insts = f.insts_of(e).to_vec();
        let def = insts[0];
        let usr = insts[1];
        f.remove_inst(def);
        let data = InstData::new(
            darm_ir::Opcode::Add,
            Type::I32,
            vec![Value::I32(1), Value::I32(1)],
        );
        use darm_ir::Value;
        let newdef = f.insert_inst_at(e, 1, data);
        // make `usr` refer to the re-inserted def that now comes *after* it
        f.inst_mut(usr).operands[0] = Value::Inst(newdef);
        assert!(matches!(verify_ssa(&f), Err(IrError::SsaViolation(_))));
    }

    #[test]
    fn rejects_cross_block_non_dominating_use() {
        // t defines a value; e uses it, but t does not dominate e.
        let mut f = Function::new("bad2", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let a = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        let _u = b.add(a, b.const_i32(2)); // invalid use
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        assert!(matches!(verify_ssa(&f), Err(IrError::SsaViolation(_))));
    }

    #[test]
    fn phi_incoming_must_dominate_pred() {
        let mut f = Function::new("bad3", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let a = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        // `a` flows in from `e`, but is defined in `t`, which does not
        // dominate `e`.
        let p = b.phi(Type::I32, &[(t, Value::I32(0)), (e, a)]);
        b.ret(Some(p));
        use darm_ir::Value;
        assert!(matches!(verify_ssa(&f), Err(IrError::SsaViolation(_))));
    }
}
