//! Natural-loop detection.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use darm_ir::BlockId;

/// One natural loop: a header plus the body blocks of all backedges
/// targeting it.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// Source blocks of the backedges (`latch -> header`).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header.
    pub blocks: Vec<BlockId>,
}

/// All natural loops of a function, with per-block nesting depth.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    loops: Vec<Loop>,
    depth: Vec<u32>,
}

impl LoopInfo {
    /// Detects natural loops using backedges `l -> h` where `h` dominates `l`.
    pub fn new(cfg: &Cfg, dt: &DomTree) -> LoopInfo {
        let n = cfg
            .rpo()
            .iter()
            .map(|b| b.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut by_header: std::collections::BTreeMap<usize, (Vec<BlockId>, Vec<BlockId>)> =
            std::collections::BTreeMap::new();
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dt.dominates(s, b) {
                    // backedge b -> s
                    let entry = by_header.entry(s.index()).or_default();
                    entry.0.push(b);
                }
            }
        }
        // Collect loop bodies: reverse flood fill from each latch up to the header.
        let mut loops = Vec::new();
        let mut depth = vec![0u32; n];
        for (h, (latches, _)) in by_header.iter_mut() {
            let header = BlockId::new(*h);
            let mut in_loop = vec![false; n];
            in_loop[*h] = true;
            let mut stack: Vec<BlockId> = latches.clone();
            for l in latches.iter() {
                in_loop[l.index()] = true;
            }
            let mut blocks = vec![header];
            while let Some(b) = stack.pop() {
                if b != header {
                    blocks.push(b);
                }
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) && b != header && !in_loop[p.index()] {
                        in_loop[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            blocks.sort();
            blocks.dedup();
            for &b in &blocks {
                depth[b.index()] += 1;
            }
            loops.push(Loop {
                header,
                latches: latches.clone(),
                blocks,
            });
        }
        LoopInfo { loops, depth }
    }

    /// The detected loops, ordered by header block index.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Loop nesting depth of a block (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth.get(b.index()).copied().unwrap_or(0)
    }

    /// Whether `b` is a loop header.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.header == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Function, IcmpPred, Type, Value};

    #[test]
    fn detects_nested_loops() {
        // entry -> oh; oh -> {ih, exit}; ih -> {body, oh_latch}; body -> ih; oh_latch -> oh
        let mut f = Function::new("nest", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let oh = f.add_block("outer_header");
        let ih = f.add_block("inner_header");
        let body = f.add_block("body");
        let ol = f.add_block("outer_latch");
        let exit = f.add_block("exit");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.jump(oh);
        b.switch_to(oh);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(10));
        b.br(c, ih, exit);
        b.switch_to(ih);
        let c2 = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(5));
        b.br(c2, body, ol);
        b.switch_to(body);
        b.jump(ih);
        b.switch_to(ol);
        b.jump(oh);
        b.switch_to(exit);
        b.ret(None);

        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let li = LoopInfo::new(&cfg, &dt);
        assert_eq!(li.loops().len(), 2);
        assert!(li.is_header(oh));
        assert!(li.is_header(ih));
        assert_eq!(li.depth(body), 2);
        assert_eq!(li.depth(ol), 1);
        assert_eq!(li.depth(exit), 0);
        assert_eq!(li.depth(entry), 0);
    }

    #[test]
    fn no_loops_in_dag() {
        let mut f = Function::new("dag", vec![], Type::Void);
        let e = f.entry();
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let li = LoopInfo::new(&cfg, &dt);
        assert!(li.loops().is_empty());
    }
}
