//! SESE subgraph decomposition of divergent-region paths.
//!
//! Implements Definitions 1–4 of the paper: inside a divergent region
//! `(E, X)`, the true path (from one successor of `E` to `X`) decomposes
//! into an ordered chain of *single-entry single-exit subgraphs* — each
//! either a single basic block or a (simple) region. The ordering follows
//! the post-dominance relation of subgraph entries/exits (§IV-C).

use crate::cfg::Cfg;
use crate::dom::{DomTree, PostDomTree};
use darm_ir::BlockId;

/// One SESE subgraph on a divergent path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeseSubgraph {
    /// Entry block (dominates every block of the subgraph).
    pub entry: BlockId,
    /// The anchor block this subgraph exits into. Not part of the subgraph;
    /// it is either the next subgraph's entry or the region exit.
    pub exit_target: BlockId,
    /// All blocks of the subgraph (sorted by arena index).
    pub blocks: Vec<BlockId>,
}

impl SeseSubgraph {
    /// Whether the subgraph is a single basic block.
    pub fn is_single_block(&self) -> bool {
        self.blocks.len() == 1
    }

    /// Whether `b` belongs to the subgraph.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// Decomposes the path from `start` to `stop` into an ordered chain of SESE
/// subgraphs by walking the immediate-post-dominator chain: consecutive
/// anchors `a₀ = start, aᵢ₊₁ = ipdom(aᵢ)` delimit the subgraphs, and each
/// subgraph's body is everything reachable from its entry without crossing
/// its exit anchor.
///
/// Returns `None` when the path is not decomposable into well-formed
/// subgraphs (a body block not dominated by its entry — i.e. a side entry —
/// or an ipdom chain that escapes `stop`). Callers treat `None` as
/// "not meldable".
pub fn sese_chain(
    cfg: &Cfg,
    dt: &DomTree,
    pdt: &PostDomTree,
    start: BlockId,
    stop: BlockId,
) -> Option<Vec<SeseSubgraph>> {
    let mut chain = Vec::new();
    let mut cur = start;
    let mut steps = 0usize;
    let budget = cfg.rpo().len() + 2;
    while cur != stop {
        steps += 1;
        if steps > budget {
            return None; // malformed chain
        }
        let next = pdt.ipdom(cur)?;
        let mut blocks = cfg.reachable_avoiding(cur, next);
        // `stop` must not be inside a subgraph body.
        if blocks.contains(&stop) && stop != next {
            return None;
        }
        // Single-entry check: every body block is dominated by the entry.
        for &b in &blocks {
            if !dt.dominates(cur, b) {
                return None;
            }
        }
        blocks.sort();
        chain.push(SeseSubgraph {
            entry: cur,
            exit_target: next,
            blocks,
        });
        cur = next;
    }
    Some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Function, IcmpPred, Type, Value};

    /// True path of a divergent region with two chained subgraphs:
    ///   start -> {i1t, i1e} -> j1 -> {i2t fallthrough} ...
    /// start: if-then-else join j1; j1: if-then join stop.
    fn chained() -> (Function, Vec<BlockId>) {
        let mut f = Function::new("c", vec![Type::I32], Type::Void);
        let entry = f.entry(); // will act as `start`
        let i1t = f.add_block("i1t");
        let i1e = f.add_block("i1e");
        let j1 = f.add_block("j1");
        let i2t = f.add_block("i2t");
        let stop = f.add_block("stop");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c0 = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c0, i1t, i1e);
        b.switch_to(i1t);
        b.jump(j1);
        b.switch_to(i1e);
        b.jump(j1);
        b.switch_to(j1);
        let c1 = b.icmp(IcmpPred::Sgt, Value::Param(0), Value::I32(5));
        b.br(c1, i2t, stop);
        b.switch_to(i2t);
        b.jump(stop);
        b.switch_to(stop);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    #[test]
    fn decomposes_into_two_subgraphs() {
        let (f, ids) = chained();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let pdt = PostDomTree::new(&f, &cfg);
        let (entry, i1t, i1e, j1, i2t, stop) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let chain = sese_chain(&cfg, &dt, &pdt, entry, stop).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].entry, entry);
        assert_eq!(chain[0].exit_target, j1);
        assert_eq!(chain[0].blocks, vec![entry, i1t, i1e]);
        assert!(!chain[0].is_single_block());
        assert_eq!(chain[1].entry, j1);
        assert_eq!(chain[1].exit_target, stop);
        assert_eq!(chain[1].blocks, vec![j1, i2t]);
    }

    #[test]
    fn single_block_chain() {
        let mut f = Function::new("s", vec![], Type::Void);
        let e = f.entry();
        let m = f.add_block("m");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, e);
        b.jump(m);
        b.switch_to(m);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let pdt = PostDomTree::new(&f, &cfg);
        let chain = sese_chain(&cfg, &dt, &pdt, m, x).unwrap();
        assert_eq!(chain.len(), 1);
        assert!(chain[0].is_single_block());
        assert!(chain[0].contains(m));
        assert!(!chain[0].contains(x));
    }

    #[test]
    fn empty_chain_when_start_is_stop() {
        let (f, ids) = chained();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let pdt = PostDomTree::new(&f, &cfg);
        let chain = sese_chain(&cfg, &dt, &pdt, ids[5], ids[5]).unwrap();
        assert!(chain.is_empty());
    }

    #[test]
    fn loop_inside_subgraph_is_captured() {
        // start -> h; h -> {body, x}; body -> h  — subgraph {start} then {h, body}
        let mut f = Function::new("l", vec![Type::I32], Type::Void);
        let start = f.entry();
        let h = f.add_block("h");
        let body = f.add_block("body");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, start);
        b.jump(h);
        b.switch_to(h);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(3));
        b.br(c, body, x);
        b.switch_to(body);
        b.jump(h);
        b.switch_to(x);
        b.ret(None);
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let pdt = PostDomTree::new(&f, &cfg);
        let chain = sese_chain(&cfg, &dt, &pdt, start, x).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[1].blocks, vec![h, body]);
    }
}
