#![warn(missing_docs)]

//! # darm-analysis
//!
//! Control-flow and divergence analyses over [`darm_ir`] functions — the
//! in-house equivalents of the LLVM analyses the DARM paper builds on:
//!
//! * [`cfg`](mod@cfg) — predecessor/successor maps and reverse post-order,
//! * [`dom`] — dominator & post-dominator trees (Cooper–Harvey–Kennedy),
//!   dominance frontiers and iterated dominance frontiers,
//! * [`loops`] — natural-loop detection and nesting depth,
//! * [`divergence`] — SIMT divergence analysis in the style of
//!   Karrenberg & Hack (data dependence from thread-id roots plus sync
//!   dependence through divergent branches),
//! * [`regions`] — SESE subgraph chains inside divergent regions
//!   (Definitions 1–4 of the paper),
//! * [`verify`] — full SSA verification (structure + dominance),
//! * [`manager`] — a memoizing [`AnalysisManager`] with reconcile-on-read
//!   invalidation, the cache behind the `darm-pipeline` pass manager:
//!   every cached entry revalidates against its own journal window at
//!   query time, and every analysis — dominator/post-dominator trees,
//!   [`Cfg`] (RPO splice below the edit window's anchor),
//!   [`DivergenceAnalysis`] (changed-closure re-derivation) and
//!   [`Liveness`] — has an in-place update path behind a profitability
//!   gate, so no analysis is unconditionally dropped anymore.

pub mod cfg;
pub mod divergence;
pub mod dom;
pub mod dot;
pub mod liveness;
pub mod loops;
pub mod manager;
pub mod regions;
pub mod verify;

pub use cfg::Cfg;
pub use divergence::DivergenceAnalysis;
pub use dom::{DomTree, EditSummary, PostDomTree};
pub use dot::to_dot;
pub use liveness::{max_pressure, InstSet, Liveness};
pub use loops::LoopInfo;
pub use manager::{Analysis, AnalysisCounters, AnalysisManager, PreservedAnalyses};
pub use regions::{sese_chain, SeseSubgraph};
pub use verify::verify_ssa;
