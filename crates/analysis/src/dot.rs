//! Graphviz (dot) export of control-flow graphs, with optional divergence
//! annotation — handy for eyeballing what the melder did (the paper's
//! Fig. 4-style before/after pictures).

use crate::divergence::DivergenceAnalysis;
use crate::Cfg;
use darm_ir::{Function, Opcode};
use std::fmt::Write as _;

/// Renders the CFG as a `digraph`. Blocks ending in divergent branches are
/// drawn with doubled red borders; edge labels distinguish the true/false
/// targets of conditional branches.
pub fn to_dot(func: &Function) -> String {
    let cfg = Cfg::new(func);
    let da = DivergenceAnalysis::new(func);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", func.name());
    let _ = writeln!(out, "  node [shape=box, fontname=monospace];");
    for &b in cfg.rpo() {
        let name = func.block_name(b);
        let insts = func.insts_of(b).len();
        let style = if da.is_divergent_branch(b) {
            ", color=red, peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"{name}\" [label=\"{name}\\n{insts} insts\"{style}];"
        );
        if let Some(t) = func.terminator(b) {
            let succs = &func.inst(t).succs;
            let cond = func.inst(t).opcode == Opcode::Br;
            for (k, s) in succs.iter().enumerate() {
                let label = if cond {
                    if k == 0 {
                        " [label=T]"
                    } else {
                        " [label=F]"
                    }
                } else {
                    ""
                };
                let _ = writeln!(out, "  \"{name}\" -> \"{}\"{label};", func.block_name(*s));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    #[test]
    fn renders_divergent_branch_specially() {
        let mut f = Function::new("dot", vec![], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(4));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        let dot = to_dot(&f);
        assert!(dot.starts_with("digraph \"dot\""));
        assert!(dot.contains("color=red"), "{dot}");
        assert!(dot.contains("\"entry\" -> \"t\" [label=T];"), "{dot}");
        assert!(dot.contains("\"t\" -> \"x\";"), "{dot}");
    }

    #[test]
    fn uniform_graph_has_no_red() {
        let mut f = Function::new("u", vec![], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        b.ret(None);
        assert!(!to_dot(&f).contains("color=red"));
    }
}
