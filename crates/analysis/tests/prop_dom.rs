//! Property-based validation of the dominator machinery against naive
//! oracles on randomly generated CFGs.

use darm_analysis::{Cfg, DomTree, PostDomTree};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{BlockId, Function, IcmpPred, Type, Value};
use proptest::prelude::*;

/// Builds a random CFG with `n` blocks. Block k branches to one or two
/// random *higher or lower* blocks (loops allowed); the last block returns.
fn build_cfg(n: usize, edges: &[(usize, Option<usize>)]) -> Function {
    let mut f = Function::new("rand", vec![Type::I32], Type::Void);
    let mut ids: Vec<BlockId> = vec![f.entry()];
    for k in 1..n {
        ids.push(f.add_block(&format!("b{k}")));
    }
    for (k, &(s1, s2)) in edges.iter().enumerate() {
        let mut b = FunctionBuilder::new(&mut f, ids[k]);
        match s2 {
            None => b.jump(ids[s1 % n]),
            Some(s2) => {
                let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(k as i32));
                b.br(c, ids[s1 % n], ids[s2 % n]);
            }
        }
    }
    // last block: ret
    let mut b = FunctionBuilder::new(&mut f, ids[n - 1]);
    b.ret(None);
    f
}

/// Naive dominance: a dominates b iff removing a makes b unreachable.
fn naive_dominates(cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
    if !cfg.is_reachable(a) || !cfg.is_reachable(b) {
        return false;
    }
    if a == b {
        return true;
    }
    if b == cfg.entry() {
        return false; // only entry dominates entry, handled above
    }
    if a == cfg.entry() {
        return true; // entry dominates everything reachable
    }
    // BFS from entry avoiding `a`.
    let mut seen = std::collections::HashSet::from([cfg.entry()]);
    let mut queue = std::collections::VecDeque::from([cfg.entry()]);
    while let Some(x) = queue.pop_front() {
        for &s in cfg.succs(x) {
            if s != a && seen.insert(s) {
                if s == b {
                    return false;
                }
                queue.push_back(s);
            }
        }
    }
    true
}

fn edge_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, Option<usize>)>> {
    proptest::collection::vec((0..n, proptest::option::of(0..n)), n - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn domtree_matches_naive_oracle(edges in edge_strategy(8)) {
        let f = build_cfg(8, &edges);
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        for &a in cfg.rpo() {
            for &b in cfg.rpo() {
                prop_assert_eq!(
                    dt.dominates(a, b),
                    naive_dominates(&cfg, a, b),
                    "dominates({}, {})",
                    f.block_name(a),
                    f.block_name(b)
                );
            }
        }
    }

    #[test]
    fn idom_strictly_dominates_and_is_closest(edges in edge_strategy(8)) {
        let f = build_cfg(8, &edges);
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        for &b in cfg.rpo() {
            if let Some(idom) = dt.idom(b) {
                prop_assert!(dt.strictly_dominates(idom, b));
                // every other strict dominator of b also dominates idom
                for &a in cfg.rpo() {
                    if a != b && dt.dominates(a, b) {
                        prop_assert!(dt.dominates(a, idom));
                    }
                }
            }
        }
    }

    #[test]
    fn ipdom_post_dominates(edges in edge_strategy(8)) {
        let f = build_cfg(8, &edges);
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        for &b in cfg.rpo() {
            if let Some(ip) = pdt.ipdom(b) {
                prop_assert!(pdt.post_dominates(ip, b));
                prop_assert!(ip != b);
            }
        }
    }

    #[test]
    fn dominance_frontier_blocks_have_unsubsumed_preds(edges in edge_strategy(8)) {
        let f = build_cfg(8, &edges);
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let df = dt.dominance_frontiers(&cfg);
        for &a in cfg.rpo() {
            for &b in &df[a.index()] {
                // definition of the dominance frontier: a dominates a pred
                // of b but does not strictly dominate b
                prop_assert!(!dt.strictly_dominates(a, b));
                prop_assert!(cfg
                    .preds(b)
                    .iter()
                    .any(|&p| cfg.is_reachable(p) && dt.dominates(a, p)));
            }
        }
    }
}
