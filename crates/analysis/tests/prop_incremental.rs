//! Property-based equivalence of incremental analysis maintenance against
//! fresh recomputation: random CFGs undergo random sequences of the
//! meld-shaped edits (split edge, redirect branch, widen a jump into a
//! branch, collapse a branch into a jump), and after every batch the
//! incrementally maintained dominator/post-dominator trees, the journal-
//! driven `AnalysisManager::update_after` cache state, and the divergence
//! and liveness results must equal from-scratch computations.

use darm_analysis::{
    AnalysisManager, Cfg, DivergenceAnalysis, DomTree, EditSummary, Liveness, PostDomTree,
};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{BlockId, Dim, Function, IcmpPred, InstData, Opcode, Type, Value};
use proptest::prelude::*;

/// Builds a random structured CFG from a byte script: `n` blocks in arena
/// order, each ending in a jump or a (possibly divergent) conditional
/// branch to script-chosen targets; the last block returns. All operands
/// are parameters, constants or block-local values, so the function is
/// valid SSA by construction.
fn build_cfg(script: &[u8]) -> Function {
    let n = (script.len() / 3).clamp(2, 12);
    let mut f = Function::new("prop", vec![Type::I32], Type::Void);
    let mut blocks = vec![f.entry()];
    for i in 1..n {
        blocks.push(f.add_block(&format!("b{i}")));
    }
    let mut b = FunctionBuilder::new(&mut f, blocks[0]);
    for i in 0..n {
        b.switch_to(blocks[i]);
        let byte = script[3 * i % script.len()];
        let t1 = blocks[script[(3 * i + 1) % script.len()] as usize % n];
        let t2 = blocks[script[(3 * i + 2) % script.len()] as usize % n];
        if i == n - 1 {
            b.ret(None);
        } else if byte.is_multiple_of(3) {
            b.jump(t1);
        } else {
            // Divergent condition half the time, uniform otherwise.
            let cond = if byte.is_multiple_of(2) {
                let tid = b.thread_idx(Dim::X);
                b.icmp(IcmpPred::Slt, tid, Value::Param(0))
            } else {
                b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(byte as i32))
            };
            b.br(cond, t1, t2);
        }
    }
    f
}

/// Applies one meld-shaped edit chosen by `op` to a random location; may be
/// a no-op when the location does not fit.
fn apply_edit(f: &mut Function, op: u8, x: u8, y: u8) {
    let blocks = f.block_ids();
    let n = blocks.len();
    let u = blocks[x as usize % n];
    let v = blocks[y as usize % n];
    if op % 5 == 4 {
        // Tombstone an unreachable block outright (meld cleanup's
        // remove-unreachable — a deletion-heavy batch component), clearing
        // φ entries that name it. `remove_block`'s contract requires every
        // in-edge gone first — including stale edges from other
        // *unreachable* blocks, which a later edit could otherwise
        // resurrect into a live edge pointing at a tombstone.
        let cfg = Cfg::new(f);
        let Some(b) = blocks.iter().copied().find(|&b| {
            b != f.entry()
                && !cfg.is_reachable(b)
                && !blocks.iter().any(|&p| p != b && f.succs(p).contains(&b))
        }) else {
            return;
        };
        for s in f.succs(b) {
            if f.is_block_alive(s) {
                f.phi_remove_incoming(s, b);
            }
        }
        f.remove_block(b);
        return;
    }
    match op % 4 {
        // Split every edge u → first-succ through a fresh block.
        0 => {
            let succs = f.succs(u);
            let Some(&t) = succs.first() else { return };
            let mid = f.add_block("split");
            f.add_inst(mid, InstData::terminator(Opcode::Jump, vec![], vec![t]));
            f.replace_succ(u, t, mid);
            f.phi_retarget_pred(t, u, mid);
        }
        // Redirect u's first successor to v.
        1 => {
            let succs = f.succs(u);
            let Some(&t) = succs.first() else { return };
            if t == v {
                return;
            }
            f.replace_succ(u, t, v);
        }
        // Widen a jump — or a return — into a conditional branch (pure
        // edge insertion; rewriting a return also deletes the block's
        // virtual-exit edge in the reversed graph). Occasionally both
        // targets coincide (`br c, v, v`), the duplicate-edge case.
        2 => {
            let Some(term) = f.terminator(u) else { return };
            let t = match f.inst(term).opcode {
                Opcode::Jump => f.inst(term).succs[0],
                Opcode::Ret => v,
                _ => return,
            };
            f.remove_inst(term);
            let cond = f.add_inst(
                u,
                InstData::new(
                    Opcode::Icmp(IcmpPred::Slt),
                    Type::I1,
                    vec![Value::Param(0), Value::I32(x as i32)],
                ),
            );
            f.add_inst(
                u,
                InstData::terminator(Opcode::Br, vec![Value::Inst(cond)], vec![t, v]),
            );
        }
        // Collapse a branch into a jump (edge deletion).
        _ => {
            let Some(term) = f.terminator(u) else { return };
            if f.inst(term).opcode != Opcode::Br {
                return;
            }
            let t = f.inst(term).succs[0];
            f.remove_inst(term);
            f.add_inst(u, InstData::terminator(Opcode::Jump, vec![], vec![t]));
        }
    }
}

fn assert_dom_eq(fresh: &DomTree, got: &DomTree, f: &Function, what: &str) {
    for i in 0..f.block_capacity() {
        let b = BlockId::new(i);
        assert_eq!(fresh.idom(b), got.idom(b), "{what}: idom({i}) differs");
        for j in 0..f.block_capacity() {
            let a = BlockId::new(j);
            assert_eq!(
                fresh.dominates(a, b),
                got.dominates(a, b),
                "{what}: dominates({j}, {i}) differs"
            );
        }
    }
}

fn assert_pdt_eq(fresh: &PostDomTree, got: &PostDomTree, f: &Function, what: &str) {
    for i in 0..f.block_capacity() {
        let b = BlockId::new(i);
        assert_eq!(fresh.ipdom(b), got.ipdom(b), "{what}: ipdom({i}) differs");
        for j in 0..f.block_capacity() {
            let a = BlockId::new(j);
            assert_eq!(
                fresh.post_dominates(a, b),
                got.post_dominates(a, b),
                "{what}: post_dominates({j}, {i}) differs"
            );
        }
    }
}

/// Regression: rewriting a `ret` block into a duplicate-target branch
/// (`br c, X, X`) deletes the block's virtual-exit edge in the reversed
/// graph. The insertion-only fast path must detect that as a reverse
/// deletion (existence-level, not successor-count arithmetic) and fall
/// back, keeping the updated post-dominator tree equal to a fresh one.
#[test]
fn ret_to_duplicate_branch_is_a_reverse_deletion() {
    let mut f = Function::new("r", vec![Type::I32], Type::Void);
    let entry = f.entry();
    let a = f.add_block("a");
    let b = f.add_block("b");
    let mut fb = FunctionBuilder::new(&mut f, entry);
    fb.jump(a);
    fb.switch_to(a);
    let c = fb.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
    fb.br(c, b, entry);
    fb.switch_to(b);
    fb.ret(None);

    let mut am = AnalysisManager::new();
    am.observe(&f);
    am.get::<PostDomTree>(&f);
    // Rewrite the ret into `br c2, entry, entry`: the window records only
    // insertions at the pair level, but b loses its virtual-exit edge.
    let term = f.terminator(b).unwrap();
    f.remove_inst(term);
    let c2 = f.add_inst(
        b,
        InstData::new(
            Opcode::Icmp(IcmpPred::Slt),
            Type::I1,
            vec![Value::Param(0), Value::I32(1)],
        ),
    );
    f.add_inst(
        b,
        InstData::terminator(Opcode::Br, vec![Value::Inst(c2)], vec![entry, entry]),
    );
    am.update_after(&f);
    let got = am.get::<PostDomTree>(&f);
    let fresh = PostDomTree::new(&f, &Cfg::new(&f));
    assert_pdt_eq(&fresh, &got, &f, "ret-to-branch");
}

/// Pinned regression for the *back-edge-covered deletion* case: a deleted
/// edge `(b, v)` whose target keeps a forward entry through `c` and a back
/// edge from `w` — the remaining-predecessor analysis must not mistake the
/// back edge for an entry path, and the affected-subtree rebuild must land
/// (not fall back to recompute) with an exact result on both trees. The
/// side chain `q1..q5` keeps the anchor's subtree under half the function
/// so the profitability gate admits the update.
#[test]
fn back_edge_covered_deletion_updates_in_place() {
    let mut f = Function::new("bee", vec![Type::I32], Type::Void);
    let entry = f.entry();
    let p = f.add_block("p");
    let b = f.add_block("b");
    let c = f.add_block("c");
    let v = f.add_block("v");
    let w = f.add_block("w");
    let x = f.add_block("x");
    let qs: Vec<BlockId> = (1..=5).map(|i| f.add_block(&format!("q{i}"))).collect();
    let mut fb = FunctionBuilder::new(&mut f, entry);
    let c0 = fb.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
    fb.br(c0, p, qs[0]);
    fb.switch_to(p);
    let c1 = fb.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(1));
    fb.br(c1, b, c);
    fb.switch_to(b);
    fb.jump(v);
    fb.switch_to(c);
    fb.jump(v);
    fb.switch_to(v);
    fb.jump(w);
    fb.switch_to(w);
    let c2 = fb.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(2));
    fb.br(c2, v, x); // back edge w → v
    fb.switch_to(x);
    fb.ret(None);
    for (i, &q) in qs.iter().enumerate() {
        fb.switch_to(q);
        match qs.get(i + 1) {
            Some(&next) => fb.jump(next),
            None => fb.ret(None),
        }
    }

    let cfg0 = Cfg::new(&f);
    let dom = DomTree::new(&f, &cfg0);
    let pdt = PostDomTree::new(&f, &cfg0);
    let cursor = f.journal_head();
    // The deletion: collapse p's branch so only the c arm feeds v; b
    // becomes unreachable and v keeps {c, w-back-edge} as predecessors.
    let term = f.terminator(p).unwrap();
    f.remove_inst(term);
    f.add_inst(
        p,
        InstData::terminator(darm_ir::Opcode::Jump, vec![], vec![c]),
    );
    let delta = f.dirty_since(cursor);
    let summary = EditSummary::normalize(&f, &delta.edits);
    assert!(
        summary.has_deletions(),
        "the window must net-delete an edge"
    );
    let cfg = Cfg::new(&f);
    let fresh_dom = DomTree::new(&f, &cfg);
    let fresh_pdt = PostDomTree::new(&f, &cfg);
    let up_dom = dom
        .try_update(&f, &cfg, &summary)
        .expect("deletion batch with a deep anchor must update in place");
    assert_dom_eq(&fresh_dom, &up_dom, &f, "pinned domtree");
    let up_pdt = pdt
        .try_update(&f, &cfg, &summary)
        .expect("reversed-graph deletion batch must update in place");
    assert_pdt_eq(&fresh_pdt, &up_pdt, &f, "pinned postdomtree");
}

/// Bit-identity of a patched [`Cfg`] against a fresh build: preds, succs,
/// RPO order, RPO indices and reachability.
fn assert_cfg_eq(fresh: &Cfg, got: &Cfg, f: &Function, what: &str) {
    assert_eq!(fresh.rpo(), got.rpo(), "{what}: RPO order differs");
    for i in 0..f.block_capacity() {
        let b = BlockId::new(i);
        assert_eq!(fresh.preds(b), got.preds(b), "{what}: preds({i}) differ");
        assert_eq!(fresh.succs(b), got.succs(b), "{what}: succs({i}) differ");
        assert_eq!(
            fresh.is_reachable(b),
            got.is_reachable(b),
            "{what}: reachability({i}) differs"
        );
        if fresh.is_reachable(b) {
            assert_eq!(
                fresh.rpo_index(b),
                got.rpo_index(b),
                "{what}: rpo_index({i}) differs"
            );
        }
    }
}

/// Pinned regression for the RPO-splice-at-anchor case: swapping a deep
/// branch's successor order nets to *zero* edge changes at the normalized
/// multiset level, yet reorders the DFS below the branch — exactly why
/// [`Cfg::try_update`] consumes the raw journal events. The side chain
/// keeps the anchor's subtree under half the reachable blocks so the
/// splice is admitted, and the result must be bit-identical to a fresh
/// build.
#[test]
fn rpo_splice_handles_successor_order_swap() {
    let mut f = Function::new("swap", vec![Type::I32], Type::Void);
    let entry = f.entry();
    let a = f.add_block("a");
    let b = f.add_block("b");
    let c = f.add_block("c");
    let d = f.add_block("d");
    let qs: Vec<BlockId> = (1..=5).map(|i| f.add_block(&format!("q{i}"))).collect();
    let mut fb = FunctionBuilder::new(&mut f, entry);
    let c0 = fb.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
    fb.br(c0, a, qs[0]);
    fb.switch_to(a);
    let c1 = fb.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(1));
    fb.br(c1, b, c);
    fb.switch_to(b);
    fb.jump(d);
    fb.switch_to(c);
    // Second path into b, so the branch collapse below keeps it reachable
    // (a block falling unreachable with a retained predecessor is one of
    // the shapes the splice rightly declines).
    let c3 = fb.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(3));
    fb.br(c3, b, d);
    fb.switch_to(d);
    fb.ret(None);
    for (i, &q) in qs.iter().enumerate() {
        fb.switch_to(q);
        match qs.get(i + 1) {
            Some(&next) => fb.jump(next),
            None => fb.ret(None),
        }
    }

    let cfg = Cfg::new(&f);
    let cursor = f.journal_head();
    // Swap a's targets: `br c1, b, c` → `br c2, c, b`.
    let term = f.terminator(a).unwrap();
    f.remove_inst(term);
    let c2 = f.add_inst(
        a,
        InstData::new(
            Opcode::Icmp(IcmpPred::Slt),
            Type::I1,
            vec![Value::Param(0), Value::I32(2)],
        ),
    );
    f.add_inst(
        a,
        InstData::terminator(Opcode::Br, vec![Value::Inst(c2)], vec![c, b]),
    );
    let mut edits = Vec::new();
    assert!(f.cfg_edits_since(cursor, &mut edits));
    let patched = cfg
        .try_update(&f, &edits)
        .expect("deep successor-order swap must splice, not rebuild");
    assert_cfg_eq(&Cfg::new(&f), &patched, &f, "succ-order swap");

    // And the deletion-containing shape on the same graph: collapse a's
    // branch to a jump, dropping the b arm below the anchor.
    let cfg = patched;
    let cursor = f.journal_head();
    let term = f.terminator(a).unwrap();
    f.remove_inst(term);
    f.add_inst(a, InstData::terminator(Opcode::Jump, vec![], vec![c]));
    edits.clear();
    assert!(f.cfg_edits_since(cursor, &mut edits));
    let patched = cfg
        .try_update(&f, &edits)
        .expect("deep branch collapse must splice, not rebuild");
    assert_cfg_eq(&Cfg::new(&f), &patched, &f, "branch collapse");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A patched `Cfg` (`try_update` over the raw journal events), when the
    /// splice is admitted, is bit-identical to a fresh build — preds,
    /// succs, RPO order and reachability — under batched meld-shaped edit
    /// windows including deletions.
    #[test]
    fn patched_cfg_equals_fresh_under_batches(
        script in proptest::collection::vec(any::<u8>(), 6..36),
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
            1..5,
        ),
    ) {
        let mut f = build_cfg(&script);
        let mut cfg = Cfg::new(&f);
        let mut edits = Vec::new();
        for batch in &batches {
            let cursor = f.journal_head();
            for &(op, x, y) in batch {
                apply_edit(&mut f, op, x, y);
            }
            edits.clear();
            prop_assert!(f.cfg_edits_since(cursor, &mut edits));
            let fresh = Cfg::new(&f);
            if let Some(patched) = cfg.try_update(&f, &edits) {
                assert_cfg_eq(&fresh, &patched, &f, "batched cfg");
            }
            cfg = fresh;
        }
    }

    /// `DivergenceAnalysis::refresh_window`, when it accepts a window, is
    /// bit-identical to a fresh recompute — under batched meld-shaped edit
    /// windows including deletions, driven directly (below the manager's
    /// profitability gates, which on functions this small would simply
    /// always choose the recompute).
    #[test]
    fn incremental_divergence_equals_fresh_under_batches(
        script in proptest::collection::vec(any::<u8>(), 6..36),
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..4),
            1..5,
        ),
    ) {
        let mut f = build_cfg(&script);
        let cfg0 = Cfg::new(&f);
        let dt0 = DomTree::new(&f, &cfg0);
        let pdt0 = PostDomTree::new(&f, &cfg0);
        let mut da = DivergenceAnalysis::run_with_pdt(&f, &cfg0, &dt0, &pdt0);
        for batch in &batches {
            let cursor = f.journal_head();
            for &(op, x, y) in batch {
                apply_edit(&mut f, op, x, y);
            }
            let mut touched = Vec::new();
            prop_assert!(f.insts_touched_since(cursor, |id| touched.push(id)));
            touched.sort_unstable();
            touched.dedup();
            let mut shape_edits = Vec::new();
            prop_assert!(f.cfg_edits_since(cursor, &mut shape_edits));
            let cfg = Cfg::new(&f);
            let dt = DomTree::new(&f, &cfg);
            let pdt = PostDomTree::new(&f, &cfg);
            let fresh = DivergenceAnalysis::run_with_pdt(&f, &cfg, &dt, &pdt);
            if let Some(refreshed) =
                da.refresh_window(&f, &cfg, &dt, &pdt, &touched, !shape_edits.is_empty())
            {
                for i in 0..f.inst_capacity() {
                    let id = darm_ir::InstId::new(i);
                    prop_assert_eq!(
                        refreshed.is_inst_divergent(id),
                        fresh.is_inst_divergent(id),
                        "divergence bit differs at inst {}", i
                    );
                }
                for i in 0..f.block_capacity() {
                    let b = BlockId::new(i);
                    prop_assert_eq!(
                        refreshed.is_divergent_branch(b),
                        fresh.is_divergent_branch(b),
                        "divergent-branch flag differs at block {}", i
                    );
                }
            }
            da = fresh;
        }
    }

    /// `DomTree::try_update` / `PostDomTree::try_update`, when they accept
    /// an edit batch, produce exactly the trees a fresh computation
    /// produces.
    #[test]
    fn incremental_trees_equal_fresh(
        script in proptest::collection::vec(any::<u8>(), 6..36),
        edits in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..8),
    ) {
        let mut f = build_cfg(&script);
        let cfg0 = Cfg::new(&f);
        let mut dom = DomTree::new(&f, &cfg0);
        let mut pdt = PostDomTree::new(&f, &cfg0);
        for &(op, x, y) in &edits {
            let cursor = f.journal_head();
            let cap_before = f.block_capacity();
            let pre = std::env::var_os("PROP_DEBUG").map(|_| f.to_string());
            apply_edit(&mut f, op, x, y);
            let delta = f.dirty_since(cursor);
            let cfg = Cfg::new(&f);
            let fresh_dom = DomTree::new(&f, &cfg);
            let fresh_pdt = PostDomTree::new(&f, &cfg);
            let summary = EditSummary::normalize(&f, &delta.edits);
            if let Some(updated) = dom.try_update(&f, &cfg, &summary) {
                if std::env::var_os("PROP_DEBUG").is_some() {
                    let bad = (0..f.block_capacity())
                        .any(|i| fresh_dom.idom(BlockId::new(i)) != updated.idom(BlockId::new(i)));
                    if bad {
                        eprintln!("script={script:?}\nedit=({op},{x},{y})\nsummary={summary:?}\nfn:\n{f}");
                        eprintln!("pre-edit fn:\n{}", pre.as_deref().unwrap_or(""));
                        for i in 0..f.block_capacity() {
                            let b = BlockId::new(i);
                            eprintln!(
                                "  idom({i}): old={:?} fresh={:?} updated={:?}",
                                dom.idom(b),
                                fresh_dom.idom(b),
                                updated.idom(b)
                            );
                        }
                    }
                }
                assert_dom_eq(&fresh_dom, &updated, &f, "domtree");
                // The changed-set must cover every block whose idom moved
                // (new blocks count as moved).
                let changed = DomTree::changed_from(&dom, &fresh_dom, &cfg);
                for &b in cfg.rpo() {
                    if b.index() >= cap_before || dom.idom(b) != fresh_dom.idom(b) {
                        prop_assert!(changed[b.index()], "changed_from missed {b:?}");
                    }
                }
            }
            if let Some(updated) = pdt.try_update(&f, &cfg, &summary) {
                if std::env::var_os("PROP_DEBUG").is_some() {
                    let bad = (0..f.block_capacity())
                        .any(|i| fresh_pdt.ipdom(BlockId::new(i)) != updated.ipdom(BlockId::new(i)));
                    if bad {
                        eprintln!("script={script:?}\nedit=({op},{x},{y})\nsummary={summary:?}\nfn:\n{f}");
                    }
                }
                assert_pdt_eq(&fresh_pdt, &updated, &f, "postdomtree");
            }
            dom = fresh_dom;
            pdt = fresh_pdt;
        }
    }

    /// Meld surgery arrives as *batches*: several blocks unlinked, branches
    /// collapsed, landing pads split and unreachable remnants tombstoned
    /// between two analysis queries. When `try_update` accepts such a
    /// deletion-containing window it must produce exactly the trees a
    /// fresh computation produces.
    #[test]
    fn incremental_trees_equal_fresh_under_batched_deletions(
        script in proptest::collection::vec(any::<u8>(), 6..36),
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 2..7),
            1..5,
        ),
    ) {
        let mut f = build_cfg(&script);
        let cfg0 = Cfg::new(&f);
        let mut dom = DomTree::new(&f, &cfg0);
        let mut pdt = PostDomTree::new(&f, &cfg0);
        for batch in &batches {
            let cursor = f.journal_head();
            for &(op, x, y) in batch {
                apply_edit(&mut f, op, x, y);
            }
            let delta = f.dirty_since(cursor);
            let cfg = Cfg::new(&f);
            let fresh_dom = DomTree::new(&f, &cfg);
            let fresh_pdt = PostDomTree::new(&f, &cfg);
            let summary = EditSummary::normalize(&f, &delta.edits);
            if let Some(updated) = dom.try_update(&f, &cfg, &summary) {
                assert_dom_eq(&fresh_dom, &updated, &f, "batched domtree");
            }
            if let Some(updated) = pdt.try_update(&f, &cfg, &summary) {
                if std::env::var_os("PROP_DEBUG").is_some() {
                    let bad = (0..f.block_capacity())
                        .any(|i| fresh_pdt.ipdom(BlockId::new(i)) != updated.ipdom(BlockId::new(i)));
                    if bad {
                        eprintln!("script={script:?}\nbatch={batch:?}\nsummary={summary:?}\nfn:\n{f}");
                    }
                }
                assert_pdt_eq(&fresh_pdt, &updated, &f, "batched postdomtree");
            }
            dom = fresh_dom;
            pdt = fresh_pdt;
        }
    }

    /// The journal-driven `AnalysisManager::update_after` leaves the cache
    /// in a state where every query answers exactly as a cold manager
    /// would — across dominator, post-dominator, divergence and liveness
    /// queries, after every edit batch.
    #[test]
    fn manager_update_after_equals_cold_cache(
        script in proptest::collection::vec(any::<u8>(), 6..36),
        edits in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
    ) {
        let mut f = build_cfg(&script);
        let mut am = AnalysisManager::new();
        am.observe(&f);
        // Warm everything.
        am.get::<DivergenceAnalysis>(&f);
        am.get::<Liveness>(&f);
        for &(op, x, y) in &edits {
            apply_edit(&mut f, op, x, y);
            am.update_after(&f);
            let dom = am.get::<DomTree>(&f);
            let pdt = am.get::<PostDomTree>(&f);
            let da = am.get::<DivergenceAnalysis>(&f);
            let live = am.get::<Liveness>(&f);
            let cfg = Cfg::new(&f);
            let fresh_dom = DomTree::new(&f, &cfg);
            let fresh_pdt = PostDomTree::new(&f, &cfg);
            let fresh_da = DivergenceAnalysis::new(&f);
            let fresh_live = Liveness::new(&f);
            assert_dom_eq(&fresh_dom, &dom, &f, "manager domtree");
            assert_pdt_eq(&fresh_pdt, &pdt, &f, "manager postdomtree");
            for b in f.block_ids() {
                prop_assert_eq!(
                    da.is_divergent_branch(b),
                    fresh_da.is_divergent_branch(b),
                    "divergent branch flag differs at {:?}", b
                );
                prop_assert_eq!(live.live_in(b), fresh_live.live_in(b));
                prop_assert_eq!(live.live_out(b), fresh_live.live_out(b));
                for &id in f.insts_of(b) {
                    prop_assert_eq!(
                        da.is_inst_divergent(id),
                        fresh_da.is_inst_divergent(id),
                        "divergence differs at {:?}", id
                    );
                }
            }
        }
    }

    /// Instruction-only windows preserve the shape analyses and re-seed
    /// liveness exactly: inserting and removing plain instructions must
    /// leave the updated liveness equal to a fresh computation.
    #[test]
    fn inst_only_liveness_update_equals_fresh(
        script in proptest::collection::vec(any::<u8>(), 6..30),
        picks in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let mut f = build_cfg(&script);
        let mut am = AnalysisManager::new();
        am.observe(&f);
        am.get::<Liveness>(&f);
        let dom_before = am.get::<DomTree>(&f);
        for &p in &picks {
            let blocks = f.block_ids();
            let b = blocks[p as usize % blocks.len()];
            let Some(term) = f.terminator(b) else { continue };
            // Insert a value before the terminator; occasionally remove it
            // again (use-count churn without shape changes).
            let v = f.insert_inst_before(
                term,
                InstData::new(Opcode::Add, Type::I32, vec![Value::Param(0), Value::I32(p as i32)]),
            );
            if p % 3 == 0 {
                f.remove_inst(v);
            }
        }
        am.update_after(&f);
        assert!(
            std::sync::Arc::ptr_eq(&dom_before, &am.get::<DomTree>(&f)),
            "instruction-only window must keep the dominator tree"
        );
        let live = am.get::<Liveness>(&f);
        let fresh = Liveness::new(&f);
        for b in f.block_ids() {
            prop_assert_eq!(live.live_in(b), fresh.live_in(b));
            prop_assert_eq!(live.live_out(b), fresh.live_out(b));
        }
    }
}
