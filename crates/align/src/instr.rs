//! Latency-prioritized instruction alignment of two basic blocks.
//!
//! This is the Branch-Fusion-style alignment the paper uses in Algorithm 2's
//! `ComputeInstrAlignment`: compatible instructions are aligned together,
//! higher-latency instructions are prioritized (matching two LDS accesses is
//! worth more than matching two adds), and unaligned instructions pay a gap
//! penalty (they will need unpredication branches).

use crate::compat::meldable_insts;
use crate::seq::{global_align, AlignStep};
use darm_ir::cost;
use darm_ir::{BlockId, Function, InstId};

/// Result of aligning the *bodies* (non-φ, non-terminator instructions) of
/// two blocks.
#[derive(Debug, Clone)]
pub struct BlockAlignment {
    /// Alignment pairs in order. `Match(a, b)` melds, `GapA`/`GapB` are
    /// unaligned instructions of the true/false block respectively.
    pub steps: Vec<AlignmentPair>,
    /// Total alignment score (saved latency minus gap penalties).
    pub score: i64,
}

/// One aligned element over concrete instruction ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignmentPair {
    /// Two meldable instructions (an `I-I` pair in Algorithm 2).
    Match(InstId, InstId),
    /// Unaligned instruction of the first (true-path) block (`I-G`).
    GapA(InstId),
    /// Unaligned instruction of the second (false-path) block (`I-G`).
    GapB(InstId),
}

/// Gap penalty per unaligned instruction: the model charges a small constant
/// for the extra control flow unpredication will introduce.
pub const GAP_PENALTY: i64 = -1;

/// Body instructions of a block (everything except φs and the terminator).
pub fn body_insts(func: &Function, b: BlockId) -> Vec<InstId> {
    func.insts_of(b)
        .iter()
        .copied()
        .filter(|&id| {
            let op = func.inst(id).opcode;
            !op.is_phi() && !op.is_terminator()
        })
        .collect()
}

/// Computes the optimal instruction alignment of two blocks' bodies.
///
/// The score of matching two compatible instructions is their shared
/// latency — i.e. the thread-cycles saved by issuing them once instead of
/// twice.
pub fn align_block_instructions(func: &Function, bt: BlockId, bf: BlockId) -> BlockAlignment {
    let a = body_insts(func, bt);
    let b = body_insts(func, bf);
    let (score, steps) = global_align(
        &a,
        &b,
        |&x, &y| meldable_insts(func, x, func, y).then(|| cost::latency_of(func, x) as i64),
        GAP_PENALTY,
    );
    let steps = steps
        .into_iter()
        .map(|s| match s {
            AlignStep::Match(i, j) => AlignmentPair::Match(a[i], b[j]),
            AlignStep::GapA(i) => AlignmentPair::GapA(a[i]),
            AlignStep::GapB(j) => AlignmentPair::GapB(b[j]),
        })
        .collect();
    BlockAlignment { steps, score }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    #[test]
    fn identical_blocks_align_fully() {
        let mut f = Function::new("a", vec![], Type::Void);
        let sh = f.add_shared_array("t", Type::I32, 64);
        let e = f.entry();
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        let base = b.shared_base(sh);
        b.jump(b1);
        for blk in [b1, b2] {
            b.switch_to(blk);
            let p = b.gep(Type::I32, base, tid);
            let v = b.load(Type::I32, p);
            let w = b.add(v, tid);
            b.store(w, p);
            b.jump(if blk == b1 { b2 } else { x });
        }
        b.switch_to(x);
        b.ret(None);

        let al = align_block_instructions(&f, b1, b2);
        let matches = al
            .steps
            .iter()
            .filter(|s| matches!(s, AlignmentPair::Match(..)))
            .count();
        assert_eq!(matches, 4);
        assert!(al.score > 0);
    }

    #[test]
    fn bitonic_compares_stay_unaligned() {
        // The Fig. 6 situation: everything aligns except icmp slt vs icmp sgt.
        let mut f = Function::new("bit", vec![], Type::Void);
        let sh = f.add_shared_array("t", Type::I32, 64);
        let e = f.entry();
        let c_blk = f.add_block("C");
        let d_blk = f.add_block("D");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        let base = b.shared_base(sh);
        let p1 = b.gep(Type::I32, base, tid);
        let v1 = b.load(Type::I32, p1);
        let v2 = b.load(Type::I32, p1);
        b.jump(c_blk);
        b.switch_to(c_blk);
        let _c1 = b.icmp(IcmpPred::Slt, v1, v2);
        b.jump(d_blk);
        b.switch_to(d_blk);
        let _c2 = b.icmp(IcmpPred::Sgt, v1, v2);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        let al = align_block_instructions(&f, c_blk, d_blk);
        assert!(al
            .steps
            .iter()
            .all(|s| !matches!(s, AlignmentPair::Match(..))));
        assert_eq!(al.steps.len(), 2);
    }

    #[test]
    fn high_latency_matches_preferred() {
        // Block A: load, add. Block B: add, load. The load-load match (high
        // latency) must win even though it forces the adds to cross.
        let mut f = Function::new("lat", vec![], Type::Void);
        let sh = f.add_shared_array("t", Type::I32, 64);
        let e = f.entry();
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        let base = b.shared_base(sh);
        let p = b.gep(Type::I32, base, tid);
        b.jump(b1);
        b.switch_to(b1);
        let _l1 = b.load(Type::I32, p);
        let _a1 = b.add(tid, tid);
        b.jump(b2);
        b.switch_to(b2);
        let _a2 = b.add(tid, tid);
        let _l2 = b.load(Type::I32, p);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        let al = align_block_instructions(&f, b1, b2);
        let match_kinds: Vec<_> = al
            .steps
            .iter()
            .filter_map(|s| match s {
                AlignmentPair::Match(a, _) => Some(f.inst(*a).opcode),
                _ => None,
            })
            .collect();
        assert!(match_kinds.contains(&darm_ir::Opcode::Load));
        // exactly one match: the loads; the adds become gaps (crossing not
        // allowed by monotone alignment)
        assert_eq!(match_kinds.len(), 1);
    }
}
