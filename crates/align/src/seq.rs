//! Generic pairwise sequence alignment.
//!
//! One dynamic program serves both uses in the paper: aligning the ordered
//! SESE subgraph chains of the two divergent paths (scored by `MP_S`), and
//! aligning the instruction sequences of two corresponding basic blocks
//! (scored by latency, as in Branch Fusion). The paper uses
//! Smith–Waterman; both the local (SW) and global (Needleman–Wunsch)
//! variants are provided.

/// One element of an alignment result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignStep {
    /// `a[i]` is aligned with `b[j]`.
    Match(usize, usize),
    /// `a[i]` is aligned with a gap.
    GapA(usize),
    /// `b[j]` is aligned with a gap.
    GapB(usize),
}

const NEG: i64 = i64::MIN / 4;

/// A `(n+1) × (m+1)` score matrix in a single allocation, row-strided.
///
/// The `Vec<Vec<i64>>` the DPs used previously cost one heap allocation per
/// row and an extra pointer chase per cell; this flat layout is one
/// allocation and pure index arithmetic.
struct FlatMatrix {
    cells: Vec<i64>,
    stride: usize,
}

impl FlatMatrix {
    fn new(n: usize, m: usize, fill: i64) -> FlatMatrix {
        FlatMatrix {
            cells: vec![fill; (n + 1) * (m + 1)],
            stride: m + 1,
        }
    }

    #[inline(always)]
    fn get(&self, i: usize, j: usize) -> i64 {
        self.cells[i * self.stride + j]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, j: usize, v: i64) {
        self.cells[i * self.stride + j] = v;
    }
}

/// Global (Needleman–Wunsch) alignment of `a` and `b`.
///
/// `score(x, y)` returns `None` when the pair may not be matched at all,
/// otherwise the benefit of matching. `gap` is the (usually non-positive)
/// penalty per unmatched element. Returns the total score and the alignment
/// steps in order; every index of both sequences appears exactly once.
///
/// `score` is invoked exactly once per `(i, j)` cell: the fill pass records
/// each diagonal candidate so the traceback never re-scores.
pub fn global_align<T>(
    a: &[T],
    b: &[T],
    mut score: impl FnMut(&T, &T) -> Option<i64>,
    gap: i64,
) -> (i64, Vec<AlignStep>) {
    let (n, m) = (a.len(), b.len());
    // dp[i][j] = best score aligning a[..i] with b[..j];
    // diag[i][j] = dp[i-1][j-1] + score(a[i-1], b[j-1]), recorded for the
    // traceback (NEG when the pair may not match).
    let mut dp = FlatMatrix::new(n, m, 0);
    let mut diag = FlatMatrix::new(n, m, NEG);
    for i in 1..=n {
        dp.set(i, 0, dp.get(i - 1, 0) + gap);
    }
    for j in 1..=m {
        dp.set(0, j, dp.get(0, j - 1) + gap);
    }
    for i in 1..=n {
        for j in 1..=m {
            let d = match score(&a[i - 1], &b[j - 1]) {
                Some(s) => dp.get(i - 1, j - 1) + s,
                None => NEG,
            };
            diag.set(i, j, d);
            dp.set(
                i,
                j,
                d.max(dp.get(i - 1, j) + gap).max(dp.get(i, j - 1) + gap),
            );
        }
    }
    // Traceback over the recorded candidates.
    let mut steps = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        if i > 0 && j > 0 && dp.get(i, j) == diag.get(i, j) {
            steps.push(AlignStep::Match(i - 1, j - 1));
            i -= 1;
            j -= 1;
            continue;
        }
        if i > 0 && dp.get(i, j) == dp.get(i - 1, j) + gap {
            steps.push(AlignStep::GapA(i - 1));
            i -= 1;
        } else {
            steps.push(AlignStep::GapB(j - 1));
            j -= 1;
        }
    }
    steps.reverse();
    (dp.get(n, m), steps)
}

/// Local (Smith–Waterman) alignment: finds the highest-scoring pair of
/// contiguous regions. Elements outside the matched window are reported as
/// gaps so that, as with [`global_align`], every index appears exactly once.
pub fn local_align<T>(
    a: &[T],
    b: &[T],
    mut score: impl FnMut(&T, &T) -> Option<i64>,
    gap: i64,
) -> (i64, Vec<AlignStep>) {
    let (n, m) = (a.len(), b.len());
    let mut dp = FlatMatrix::new(n, m, 0);
    let mut diag = FlatMatrix::new(n, m, NEG);
    let (mut best, mut bi, mut bj) = (0i64, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let d = match score(&a[i - 1], &b[j - 1]) {
                Some(s) => dp.get(i - 1, j - 1) + s,
                None => NEG,
            };
            diag.set(i, j, d);
            let cell = 0
                .max(d)
                .max(dp.get(i - 1, j) + gap)
                .max(dp.get(i, j - 1) + gap);
            dp.set(i, j, cell);
            if cell > best {
                best = cell;
                bi = i;
                bj = j;
            }
        }
    }
    // Traceback from the maximum until a zero cell.
    let mut core = Vec::new();
    let (mut i, mut j) = (bi, bj);
    while i > 0 && j > 0 && dp.get(i, j) > 0 {
        if dp.get(i, j) == diag.get(i, j) {
            core.push(AlignStep::Match(i - 1, j - 1));
            i -= 1;
            j -= 1;
        } else if dp.get(i, j) == dp.get(i - 1, j) + gap {
            core.push(AlignStep::GapA(i - 1));
            i -= 1;
        } else {
            core.push(AlignStep::GapB(j - 1));
            j -= 1;
        }
    }
    core.reverse();
    // Pad the unmatched prefixes and suffixes with gaps.
    let mut steps = Vec::new();
    for k in 0..i {
        steps.push(AlignStep::GapA(k));
    }
    for k in 0..j {
        steps.push(AlignStep::GapB(k));
    }
    steps.extend(core);
    for k in bi..n {
        steps.push(AlignStep::GapA(k));
    }
    for k in bj..m {
        steps.push(AlignStep::GapB(k));
    }
    (best, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn char_score(a: &char, b: &char) -> Option<i64> {
        (a == b).then_some(2)
    }

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn matches(steps: &[AlignStep]) -> Vec<(usize, usize)> {
        steps
            .iter()
            .filter_map(|s| match s {
                AlignStep::Match(i, j) => Some((*i, *j)),
                _ => None,
            })
            .collect()
    }

    /// Every index of both sequences appears exactly once, in order.
    fn check_cover(steps: &[AlignStep], n: usize, m: usize) {
        let mut ai = Vec::new();
        let mut bj = Vec::new();
        for s in steps {
            match *s {
                AlignStep::Match(i, j) => {
                    ai.push(i);
                    bj.push(j);
                }
                AlignStep::GapA(i) => ai.push(i),
                AlignStep::GapB(j) => bj.push(j),
            }
        }
        assert_eq!(ai, (0..n).collect::<Vec<_>>());
        assert_eq!(bj, (0..m).collect::<Vec<_>>());
    }

    #[test]
    fn identical_sequences_fully_match() {
        let a = chars("abcd");
        let (score, steps) = global_align(&a, &a, char_score, -1);
        assert_eq!(score, 8);
        assert_eq!(matches(&steps).len(), 4);
        check_cover(&steps, 4, 4);
    }

    #[test]
    fn global_alignment_handles_insertion() {
        let a = chars("abcd");
        let b = chars("abXcd");
        let (score, steps) = global_align(&a, &b, char_score, -1);
        assert_eq!(score, 8 - 1);
        assert_eq!(matches(&steps).len(), 4);
        assert!(steps.contains(&AlignStep::GapB(2)));
        check_cover(&steps, 4, 5);
    }

    #[test]
    fn incompatible_pairs_never_match() {
        let a = chars("ab");
        let b = chars("ab");
        // forbid matching 'a' with anything
        let score = |x: &char, y: &char| (x == y && *x != 'a').then_some(2);
        let (_, steps) = global_align(&a, &b, score, 0);
        let m = matches(&steps);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0], (1, 1));
        check_cover(&steps, 2, 2);
    }

    #[test]
    fn matches_are_monotone() {
        let a = chars("axbyc");
        let b = chars("aybxc");
        let (_, steps) = global_align(&a, &b, char_score, 0);
        let m = matches(&steps);
        for w in m.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        check_cover(&steps, 5, 5);
    }

    #[test]
    fn local_alignment_finds_core() {
        let a = chars("xxabcyy");
        let b = chars("zzabcww");
        let (score, steps) = local_align(&a, &b, char_score, -1);
        assert_eq!(score, 6);
        let m = matches(&steps);
        assert_eq!(m, vec![(2, 2), (3, 3), (4, 4)]);
        check_cover(&steps, 7, 7);
    }

    #[test]
    fn empty_sequences() {
        let a: Vec<char> = vec![];
        let b = chars("ab");
        let (score, steps) = global_align(&a, &b, char_score, -1);
        assert_eq!(score, -2);
        check_cover(&steps, 0, 2);
        let (ls, lsteps) = local_align(&a, &b, char_score, -1);
        assert_eq!(ls, 0);
        check_cover(&lsteps, 0, 2);
    }
}
