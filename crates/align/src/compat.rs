//! Instruction melding compatibility.
//!
//! Two instructions may be melded into one when they perform the same
//! operation on operands of the same types — the criteria of Rocha et al.
//! ("Function Merging by Sequence Alignment") that the paper adopts for
//! instruction alignment (§IV-C). A load is never aligned with a store, and
//! memory operations must target the same address space (melding an LDS
//! access with a global access would change its latency class and is not a
//! single machine instruction).

use darm_ir::cost;
use darm_ir::{AddrSpace, Function, InstId, Opcode};

/// The "instruction type" used by the profitability metric's frequency
/// profile (set `Q` in the paper's `MP_B` formula): the opcode plus, for
/// memory operations, the address space accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstKind {
    /// The opcode (with its payload: predicate, GEP element type, ...).
    pub opcode: Opcode,
    /// Address space for loads/stores, `None` otherwise.
    pub space: Option<AddrSpace>,
}

impl InstKind {
    /// The static latency of this kind.
    pub fn latency(self) -> u64 {
        cost::latency(self.opcode, self.space)
    }
}

/// The [`InstKind`] of an instruction.
pub fn inst_kind(func: &Function, id: InstId) -> InstKind {
    let data = func.inst(id);
    InstKind {
        opcode: data.opcode,
        space: cost::mem_space_of(func, data),
    }
}

/// Whether two instructions (possibly from different functions) may be
/// melded into a single instruction.
///
/// φ-nodes and terminators are never melded here — Algorithm 2 copies φs
/// and melds exit branches through dedicated side blocks instead.
pub fn meldable_insts(fa: &Function, a: InstId, fb: &Function, b: InstId) -> bool {
    let ia = fa.inst(a);
    let ib = fb.inst(b);
    if ia.opcode != ib.opcode {
        return false;
    }
    if ia.opcode.is_phi() || ia.opcode.is_terminator() {
        return false;
    }
    // Barriers and warp intrinsics must keep their exact execution context.
    if matches!(ia.opcode, Opcode::Syncthreads) || ia.opcode.is_warp_intrinsic() {
        return false;
    }
    if ia.ty != ib.ty || ia.operands.len() != ib.operands.len() {
        return false;
    }
    for (&oa, &ob) in ia.operands.iter().zip(&ib.operands) {
        if fa.value_ty(oa) != fb.value_ty(ob) {
            return false;
        }
    }
    // Memory operations must agree on address space.
    if ia.opcode.is_mem() {
        let sa = cost::mem_space_of(fa, ia);
        let sb = cost::mem_space_of(fb, ib);
        if sa != sb {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    /// Builds one block with a mix of instructions; returns (func, inst ids).
    fn sample() -> (Function, Vec<InstId>) {
        let mut f = Function::new(
            "s",
            vec![Type::Ptr(AddrSpace::Global), Type::I32],
            Type::Void,
        );
        let sh = f.add_shared_array("t", Type::I32, 32);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        let a1 = b.add(tid, b.param(1)); // 1
        let a2 = b.add(tid, tid); // 2
        let m = b.mul(tid, tid); // 3
        let c1 = b.icmp(IcmpPred::Slt, a1, a2); // 4
        let _c2 = b.icmp(IcmpPred::Sgt, a1, a2); // 5
        let gp = b.gep(Type::I32, b.param(0), tid); // 6
        let gl = b.load(Type::I32, gp); // 7
        let sb = b.shared_base(sh); // 8
        let sp = b.gep(Type::I32, sb, tid); // 9
        let sl = b.load(Type::I32, sp); // 10
        b.store(gl, sp); // 11
        b.store(sl, gp); // 12
        let _sel = b.select(c1, m, a1); // 13
        b.ret(None);
        let ids = f.insts_of(e).to_vec();
        (f, ids)
    }

    #[test]
    fn same_opcode_same_types_meldable() {
        let (f, ids) = sample();
        assert!(meldable_insts(&f, ids[1], &f, ids[2])); // add vs add
    }

    #[test]
    fn different_opcodes_not_meldable() {
        let (f, ids) = sample();
        assert!(!meldable_insts(&f, ids[1], &f, ids[3])); // add vs mul
    }

    #[test]
    fn icmp_predicates_must_match() {
        let (f, ids) = sample();
        // icmp slt vs icmp sgt — the bitonic-sort situation: not meldable.
        assert!(!meldable_insts(&f, ids[4], &f, ids[5]));
        assert!(meldable_insts(&f, ids[4], &f, ids[4]));
    }

    #[test]
    fn loads_from_different_spaces_not_meldable() {
        let (f, ids) = sample();
        assert!(!meldable_insts(&f, ids[7], &f, ids[10])); // global vs shared load
    }

    #[test]
    fn stores_to_different_spaces_not_meldable() {
        let (f, ids) = sample();
        assert!(!meldable_insts(&f, ids[11], &f, ids[12]));
    }

    #[test]
    fn load_never_melds_with_store() {
        let (f, ids) = sample();
        assert!(!meldable_insts(&f, ids[7], &f, ids[11]));
    }

    #[test]
    fn kind_latency_distinguishes_spaces() {
        let (f, ids) = sample();
        let kg = inst_kind(&f, ids[7]);
        let ks = inst_kind(&f, ids[10]);
        assert_ne!(kg, ks);
        assert!(kg.latency() > ks.latency());
    }
}
