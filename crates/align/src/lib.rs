#![warn(missing_docs)]

//! # darm-align
//!
//! Sequence alignment and melding profitability — the quantitative half of
//! DARM's analysis phase (§IV-C of the paper):
//!
//! * [`seq`] — generic Needleman–Wunsch / Smith–Waterman alignment used for
//!   both subgraph alignment and instruction alignment,
//! * [`compat`] — instruction melding compatibility in the style of Rocha
//!   et al. (same opcode, compatible operand types, matching address
//!   spaces for memory operations),
//! * [`profit`] — the `MP_B` (basic-block) and `MP_S` (subgraph) melding
//!   profitability metrics,
//! * [`instr`] — latency-prioritized instruction alignment of two basic
//!   blocks (the Branch Fusion approach the paper adopts).

pub mod compat;
pub mod instr;
pub mod profit;
pub mod seq;

pub use compat::{inst_kind, meldable_insts, InstKind};
pub use instr::{align_block_instructions, BlockAlignment};
pub use profit::{block_melding_profit, subgraph_melding_profit};
pub use seq::{global_align, local_align, AlignStep};
