//! Melding profitability metrics (§IV-C of the paper).
//!
//! `MP_B(b1, b2)` approximates the fraction of thread-cycles saved by
//! melding two basic blocks, assuming the best case where every common
//! instruction kind is melded:
//!
//! ```text
//! MP_B(b1, b2) = Σ_{i ∈ Q} min(freq(i, b1), freq(i, b2)) · w_i
//!                ─────────────────────────────────────────────
//!                          lat(b1) + lat(b2)
//! ```
//!
//! Two blocks with identical opcode-frequency profiles score exactly 0.5.
//!
//! `MP_S(S1, S2)` lifts this to SESE subgraphs as the latency-weighted mean
//! of `MP_B` over corresponding block pairs.

use crate::compat::{inst_kind, InstKind};
use darm_ir::cost;
use darm_ir::{BlockId, Function};
use std::collections::HashMap;

fn kind_profile(func: &Function, b: BlockId) -> HashMap<InstKind, u64> {
    let mut profile = HashMap::new();
    for &id in func.insts_of(b) {
        let data = func.inst(id);
        if data.opcode.is_phi() || data.opcode.is_terminator() {
            continue;
        }
        *profile.entry(inst_kind(func, id)).or_insert(0) += 1;
    }
    profile
}

fn body_latency(func: &Function, b: BlockId) -> u64 {
    func.insts_of(b)
        .iter()
        .filter(|&&id| {
            let op = func.inst(id).opcode;
            !op.is_phi() && !op.is_terminator()
        })
        .map(|&id| cost::latency_of(func, id))
        .sum()
}

/// The basic-block melding profitability `MP_B(b1, b2)` ∈ [0, 0.5].
///
/// Returns 0.0 when both blocks are empty of meldable instructions.
pub fn block_melding_profit(func: &Function, b1: BlockId, b2: BlockId) -> f64 {
    let p1 = kind_profile(func, b1);
    let p2 = kind_profile(func, b2);
    let mut common = 0u64;
    for (kind, &c1) in &p1 {
        if let Some(&c2) = p2.get(kind) {
            common += c1.min(c2) * kind.latency();
        }
    }
    let denom = body_latency(func, b1) + body_latency(func, b2);
    if denom == 0 {
        return 0.0;
    }
    common as f64 / denom as f64
}

/// The subgraph melding profitability `MP_S(S1, S2)` given the one-to-one
/// mapping `pairs` between corresponding basic blocks of the two isomorphic
/// subgraphs.
pub fn subgraph_melding_profit(func: &Function, pairs: &[(BlockId, BlockId)]) -> f64 {
    let mut num = 0.0;
    let mut denom = 0.0;
    for &(b1, b2) in pairs {
        let lat = (body_latency(func, b1) + body_latency(func, b2)) as f64;
        num += block_melding_profit(func, b1, b2) * lat;
        denom += lat;
    }
    if denom == 0.0 {
        0.0
    } else {
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, Type};

    /// Two blocks with identical instruction mixes and a third that shares
    /// nothing with them.
    fn three_blocks() -> (Function, BlockId, BlockId, BlockId) {
        let mut f = Function::new("p", vec![], Type::Void);
        let e = f.entry();
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        let b3 = f.add_block("b3");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        b.jump(b1);
        b.switch_to(b1);
        let a = b.add(tid, tid);
        let _m = b.mul(a, tid);
        b.jump(b2);
        b.switch_to(b2);
        let a2 = b.add(tid, b.const_i32(5));
        let _m2 = b.mul(a2, a2);
        b.jump(b3);
        b.switch_to(b3);
        let f1 = b.sitofp(tid);
        let _d = b.fdiv(f1, b.const_f32(2.0));
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        (f, b1, b2, b3)
    }

    #[test]
    fn identical_profiles_score_half() {
        let (f, b1, b2, _) = three_blocks();
        let mp = block_melding_profit(&f, b1, b2);
        assert!((mp - 0.5).abs() < 1e-9, "mp = {mp}");
    }

    #[test]
    fn disjoint_profiles_score_low() {
        let (f, b1, _, b3) = three_blocks();
        let mp = block_melding_profit(&f, b1, b3);
        assert!(mp < 0.2, "mp = {mp}");
    }

    #[test]
    fn profit_is_symmetric() {
        let (f, b1, b2, b3) = three_blocks();
        assert_eq!(
            block_melding_profit(&f, b1, b2),
            block_melding_profit(&f, b2, b1)
        );
        assert_eq!(
            block_melding_profit(&f, b1, b3),
            block_melding_profit(&f, b3, b1)
        );
    }

    #[test]
    fn subgraph_profit_weighted_mean() {
        let (f, b1, b2, b3) = three_blocks();
        let mp_good = subgraph_melding_profit(&f, &[(b1, b2)]);
        let mp_mixed = subgraph_melding_profit(&f, &[(b1, b2), (b1, b3)]);
        assert!(mp_good > mp_mixed);
        assert!((subgraph_melding_profit(&f, &[(b1, b1)]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_blocks_score_zero() {
        let mut f = Function::new("e", vec![], Type::Void);
        let e = f.entry();
        let b2 = f.add_block("b2");
        let mut b = FunctionBuilder::new(&mut f, e);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(None);
        assert_eq!(block_melding_profit(&f, e, b2), 0.0);
        assert_eq!(subgraph_melding_profit(&f, &[]), 0.0);
    }
}
