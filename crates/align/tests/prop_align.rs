//! Property-based tests of the sequence-alignment engine: structural
//! invariants that must hold for every input, plus agreement with a naive
//! oracle on small instances.

use darm_align::{global_align, local_align, AlignStep};
use proptest::prelude::*;

fn score(a: &u8, b: &u8) -> Option<i64> {
    (a == b).then_some(2)
}

/// Every index of both sequences appears exactly once, in increasing order.
fn check_cover(steps: &[AlignStep], n: usize, m: usize) {
    let mut ai = Vec::new();
    let mut bj = Vec::new();
    for s in steps {
        match *s {
            AlignStep::Match(i, j) => {
                ai.push(i);
                bj.push(j);
            }
            AlignStep::GapA(i) => ai.push(i),
            AlignStep::GapB(j) => bj.push(j),
        }
    }
    assert_eq!(ai, (0..n).collect::<Vec<_>>());
    assert_eq!(bj, (0..m).collect::<Vec<_>>());
}

/// Exhaustive best global alignment score for tiny instances.
fn oracle_global(a: &[u8], b: &[u8], gap: i64) -> i64 {
    fn go(a: &[u8], b: &[u8], gap: i64) -> i64 {
        match (a.first(), b.first()) {
            (None, None) => 0,
            (Some(_), None) => gap * a.len() as i64,
            (None, Some(_)) => gap * b.len() as i64,
            (Some(&x), Some(&y)) => {
                let mut best = go(&a[1..], b, gap) + gap;
                best = best.max(go(a, &b[1..], gap) + gap);
                if x == y {
                    best = best.max(go(&a[1..], &b[1..], gap) + 2);
                }
                best
            }
        }
    }
    go(a, b, gap)
}

proptest! {
    #[test]
    fn global_alignment_covers_all_indices(
        a in proptest::collection::vec(0u8..5, 0..20),
        b in proptest::collection::vec(0u8..5, 0..20),
    ) {
        let (_, steps) = global_align(&a, &b, score, -1);
        check_cover(&steps, a.len(), b.len());
    }

    #[test]
    fn local_alignment_covers_all_indices(
        a in proptest::collection::vec(0u8..5, 0..20),
        b in proptest::collection::vec(0u8..5, 0..20),
    ) {
        let (s, steps) = local_align(&a, &b, score, -1);
        prop_assert!(s >= 0);
        check_cover(&steps, a.len(), b.len());
    }

    #[test]
    fn matches_are_strictly_monotone(
        a in proptest::collection::vec(0u8..3, 0..16),
        b in proptest::collection::vec(0u8..3, 0..16),
    ) {
        let (_, steps) = global_align(&a, &b, score, 0);
        let matches: Vec<(usize, usize)> = steps
            .iter()
            .filter_map(|s| match s {
                AlignStep::Match(i, j) => Some((*i, *j)),
                _ => None,
            })
            .collect();
        for w in matches.windows(2) {
            prop_assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
        // matched pairs really are equal under the score function
        for (i, j) in matches {
            prop_assert_eq!(a[i], b[j]);
        }
    }

    #[test]
    fn global_score_matches_oracle(
        a in proptest::collection::vec(0u8..3, 0..7),
        b in proptest::collection::vec(0u8..3, 0..7),
    ) {
        let (s, _) = global_align(&a, &b, score, -1);
        prop_assert_eq!(s, oracle_global(&a, &b, -1));
    }

    #[test]
    fn identical_sequences_score_perfectly(a in proptest::collection::vec(0u8..5, 0..24)) {
        let (s, steps) = global_align(&a, &a, score, -1);
        prop_assert_eq!(s, 2 * a.len() as i64);
        prop_assert!(steps.iter().all(|st| matches!(st, AlignStep::Match(i, j) if i == j)));
    }

    #[test]
    fn alignment_is_symmetric_in_score(
        a in proptest::collection::vec(0u8..4, 0..12),
        b in proptest::collection::vec(0u8..4, 0..12),
    ) {
        let (s1, _) = global_align(&a, &b, score, -1);
        let (s2, _) = global_align(&b, &a, score, -1);
        prop_assert_eq!(s1, s2);
    }
}
