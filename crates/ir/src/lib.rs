#![warn(missing_docs)]

//! # darm-ir
//!
//! A compact SSA intermediate representation modelled on LLVM-IR, carrying
//! exactly the features the DARM control-flow melding transformation
//! (Saumya et al., CGO 2022) relies on:
//!
//! * a control-flow graph of basic blocks with a single terminator each,
//! * SSA values with φ-nodes at control-flow merges,
//! * typed loads/stores through opaque pointers with *address spaces*
//!   (global vs. shared/LDS memory),
//! * GPU intrinsics (`tid.x`, `ctaid.x`, `ntid.x`, `bar.sync`, `ballot`),
//! * a static per-opcode latency cost model (the analogue of LLVM's
//!   `CostModel.cpp`) used by melding profitability and by the SIMT
//!   simulator.
//!
//! Functions are arena-based: [`Function`] owns all blocks and instructions,
//! and [`BlockId`]/[`InstId`]/[`Value`] are small `Copy` handles. A
//! [`Module`] collects named functions for batch compilation — each keeps
//! its own mutation journal, so module-level drivers run incremental
//! per-function pipelines unchanged (and, functions being independent, in
//! parallel).
//!
//! ```
//! use darm_ir::{builder::FunctionBuilder, Function, Type, AddrSpace, IcmpPred, Dim};
//!
//! // if (tid < n) { out[tid] = tid * 2 }
//! let mut f = Function::new(
//!     "example",
//!     vec![Type::I32, Type::Ptr(AddrSpace::Global)],
//!     Type::Void,
//! );
//! let entry = f.entry();
//! let then = f.add_block("then");
//! let exit = f.add_block("exit");
//! let mut b = FunctionBuilder::new(&mut f, entry);
//! let tid = b.thread_idx(Dim::X);
//! let n = b.param(0);
//! let cond = b.icmp(IcmpPred::Slt, tid, n);
//! b.br(cond, then, exit);
//! b.switch_to(then);
//! let two = b.const_i32(2);
//! let v = b.mul(tid, two);
//! let out = b.param(1);
//! let ptr = b.gep(Type::I32, out, tid);
//! b.store(v, ptr);
//! b.jump(exit);
//! b.switch_to(exit);
//! b.ret(None);
//! f.verify_structure().unwrap();
//! ```

pub mod budget;
pub mod builder;
pub mod cost;
pub mod dirty;
pub mod fault;
pub mod function;
pub mod hash;
pub mod module;
pub mod opcode;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;

pub use budget::Budget;
pub use dirty::{BlockSet, CfgEdit, DirtyDelta, DirtyInstSet, JournalCursor, WindowProbe};
pub use function::{
    BlockData, BlockId, Function, FunctionSnapshot, InstData, InstId, IrError, SharedArray,
};
pub use module::{DuplicateFunction, Module};
pub use opcode::{Dim, FcmpPred, IcmpPred, Opcode};
pub use types::{AddrSpace, Type};
pub use value::Value;
