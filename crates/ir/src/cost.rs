//! Static instruction cost model.
//!
//! The analogue of the "modified LLVM cost model" the paper uses to weight
//! the melding profitability metric (§V) and that the SIMT simulator charges
//! per issued warp instruction. Only the *relative* magnitudes matter:
//! shared-memory accesses cost noticeably more than ALU work but far less
//! than global-memory accesses (§VI-D), so melding a pair of divergent LDS
//! instructions saves more thread-cycles than melding a pair of adds.

use crate::function::BlockId;
use crate::function::Function;
use crate::opcode::Opcode;
use crate::types::{AddrSpace, Type};
use crate::value::Value;

/// Latency in cycles of a simple ALU operation.
pub const ALU_LATENCY: u64 = 4;
/// Latency in cycles of an integer/float multiply.
pub const MUL_LATENCY: u64 = 8;
/// Latency in cycles of a divide/remainder/sqrt/exp.
pub const DIV_LATENCY: u64 = 40;
/// Issue latency of a shared-memory (LDS) access.
pub const SHARED_MEM_LATENCY: u64 = 32;
/// Issue latency of a global-memory access (one coalesced transaction).
pub const GLOBAL_MEM_LATENCY: u64 = 300;
/// Extra cycles per additional 128-byte segment touched by a divergent
/// global access (memory-controller serialization, §VI-D).
pub const GLOBAL_TRANSACTION_LATENCY: u64 = 80;
/// Cache-line segment size used by the coalescing model.
pub const COALESCE_SEGMENT_BYTES: u64 = 128;
/// Number of shared-memory (LDS) banks.
pub const SHARED_BANKS: u64 = 32;
/// Word size of one shared-memory bank.
pub const SHARED_BANK_WORD_BYTES: u64 = 4;
/// Extra cycles per additional conflicting access to the same bank.
pub const SHARED_BANK_CONFLICT_PENALTY: u64 = 16;
/// Cost of a branch instruction.
pub const BRANCH_LATENCY: u64 = 2;

/// Static latency of one instruction, given the address space its pointer
/// operand lives in (for memory operations).
///
/// [`latency_of`] resolves the address space from a concrete instruction.
pub fn latency(op: Opcode, mem_space: Option<AddrSpace>) -> u64 {
    use Opcode::*;
    match op {
        Add | Sub | And | Or | Xor | Shl | LShr | AShr | Icmp(_) | Fcmp(_) | Select | Zext
        | Sext | Trunc | FNeg | FAbs => ALU_LATENCY,
        Mul | FAdd | FSub | FMul | SiToFp | FpToSi => MUL_LATENCY,
        SDiv | SRem | UDiv | URem | FDiv | FSqrt | FExp => DIV_LATENCY,
        Load | Store => match mem_space {
            Some(AddrSpace::Shared) => SHARED_MEM_LATENCY,
            _ => GLOBAL_MEM_LATENCY,
        },
        Gep { .. } => ALU_LATENCY,
        ThreadIdx(_) | BlockIdx(_) | BlockDim(_) | GridDim(_) | SharedBase(_) => 1,
        Syncthreads => 1,
        Ballot => ALU_LATENCY,
        Phi => 0,
        Br => BRANCH_LATENCY,
        Jump | Ret => 1,
    }
}

/// Latency of a concrete instruction in `func`, resolving the address space
/// of memory operations from the pointer operand's type.
pub fn latency_of(func: &Function, inst: crate::function::InstId) -> u64 {
    let data = func.inst(inst);
    let space = mem_space_of(func, data);
    latency(data.opcode, space)
}

/// The address space accessed by a load/store, if `data` is one.
pub fn mem_space_of(func: &Function, data: &crate::function::InstData) -> Option<AddrSpace> {
    let ptr_idx = match data.opcode {
        Opcode::Load => 0,
        Opcode::Store => 1,
        _ => return None,
    };
    match func.value_ty(data.operands[ptr_idx]) {
        Type::Ptr(space) => Some(space),
        _ => None,
    }
}

/// Sum of instruction latencies of a basic block — `lat(b)` in the paper's
/// melding-profitability formula (§IV-C).
pub fn block_latency(func: &Function, b: BlockId) -> u64 {
    func.insts_of(b).iter().map(|&i| latency_of(func, i)).sum()
}

/// Convenience: the latency a `Value` costs if rematerialized (0 for
/// constants and parameters).
pub fn value_latency(func: &Function, v: Value) -> u64 {
    match v {
        Value::Inst(id) => latency_of(func, id),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::opcode::Dim;

    #[test]
    fn ordering_alu_shared_global() {
        assert!(latency(Opcode::Add, None) < latency(Opcode::Load, Some(AddrSpace::Shared)));
        assert!(
            latency(Opcode::Load, Some(AddrSpace::Shared))
                < latency(Opcode::Load, Some(AddrSpace::Global))
        );
    }

    #[test]
    fn memory_space_resolution() {
        let mut f = Function::new("m", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let s = f.add_shared_array("t", Type::I32, 8);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let base = b.shared_base(s);
        let tid = b.thread_idx(Dim::X);
        let sp = b.gep(Type::I32, base, tid);
        let sv = b.load(Type::I32, sp);
        let gp = b.gep(Type::I32, b.param(0), tid);
        b.store(sv, gp);
        b.ret(None);

        let ids = f.insts_of(e).to_vec();
        let shared_load = ids[3];
        let global_store = ids[5];
        assert_eq!(latency_of(&f, shared_load), SHARED_MEM_LATENCY);
        assert_eq!(latency_of(&f, global_store), GLOBAL_MEM_LATENCY);
    }

    #[test]
    fn block_latency_sums() {
        let mut f = Function::new("bl", vec![], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let one = b.const_i32(1);
        let two = b.const_i32(2);
        let x = b.add(one, two);
        let _y = b.mul(x, x);
        b.ret(None);
        assert_eq!(block_latency(&f, e), ALU_LATENCY + MUL_LATENCY + 1);
    }
}
