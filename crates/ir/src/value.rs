//! SSA values.

use crate::function::InstId;
use crate::types::Type;
use std::fmt;

/// An SSA value: an instruction result, a function parameter, a constant, or
/// `undef`.
///
/// `Value` is a small `Copy` handle; constant floats are stored as raw bits so
/// that `Value` can implement `Eq` and `Hash` (needed by the melding operand
/// maps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// Result of an instruction.
    Inst(InstId),
    /// The n-th function parameter.
    Param(u32),
    /// `i1` constant.
    I1(bool),
    /// `i32` constant.
    I32(i32),
    /// `i64` constant.
    I64(i64),
    /// `f32` constant, stored as IEEE-754 bits.
    F32Bits(u32),
    /// Undefined value of the given type (LLVM `undef`).
    Undef(Type),
}

impl Value {
    /// Constructs an `f32` constant.
    pub fn const_f32(x: f32) -> Value {
        Value::F32Bits(x.to_bits())
    }

    /// The float value of an [`Value::F32Bits`] constant, if this is one.
    pub fn as_f32(self) -> Option<f32> {
        match self {
            Value::F32Bits(bits) => Some(f32::from_bits(bits)),
            _ => None,
        }
    }

    /// The instruction id, if this value is an instruction result.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(id),
            _ => None,
        }
    }

    /// Whether this value is a compile-time constant (including `undef`).
    pub fn is_const(self) -> bool {
        !matches!(self, Value::Inst(_) | Value::Param(_))
    }

    /// Whether this value is `undef`.
    pub fn is_undef(self) -> bool {
        matches!(self, Value::Undef(_))
    }
}

impl From<InstId> for Value {
    fn from(id: InstId) -> Value {
        Value::Inst(id)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(id) => write!(f, "%{}", id.index()),
            Value::Param(i) => write!(f, "%arg{i}"),
            Value::I1(b) => write!(f, "{b}"),
            Value::I32(x) => write!(f, "{x}"),
            Value::I64(x) => write!(f, "{x}i64"),
            Value::F32Bits(bits) => write!(f, "{:?}f", f32::from_bits(*bits)),
            Value::Undef(ty) => write!(f, "undef:{ty}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_constants_round_trip() {
        let v = Value::const_f32(1.5);
        assert_eq!(v.as_f32(), Some(1.5));
        assert_eq!(v, Value::const_f32(1.5));
        assert_ne!(v, Value::const_f32(2.5));
    }

    #[test]
    fn const_classification() {
        assert!(Value::I32(3).is_const());
        assert!(Value::Undef(Type::I32).is_const());
        assert!(Value::Undef(Type::I32).is_undef());
        assert!(!Value::Param(0).is_const());
        assert!(!Value::Inst(InstId::new(0)).is_const());
    }

    #[test]
    fn display() {
        assert_eq!(Value::I32(42).to_string(), "42");
        assert_eq!(Value::Param(1).to_string(), "%arg1");
        assert_eq!(Value::Undef(Type::I1).to_string(), "undef:i1");
    }
}
