//! Compilation budgets: a shared wall-clock deadline plus fuel counter
//! that expensive loops poll, and an unwind-based cancellation protocol.
//!
//! A [`Budget`] is a cheap cloneable handle (an `Arc` internally, or
//! nothing at all for the unlimited default) that a driver constructs once
//! and threads through its pipeline options. Code on the hot path never
//! sees the handle: it calls the free function [`poll`] at the top of its
//! expensive loops, which consults the *innermost installed* budget of the
//! current thread. When nothing is installed — the fault-free default —
//! [`poll`] is a thread-local flag check and returns immediately, which is
//! what keeps the instrumented hot paths within the repo's perf-gate
//! floors.
//!
//! Exhaustion cancels via `std::panic::panic_any` with a typed
//! [`Cancelled`] payload. That unwind is *not* an error escape hatch: it
//! is caught at the per-function containment boundary in `darm-pipeline`,
//! which restores the function's pre-pipeline snapshot and records a
//! degraded outcome. Budgets are shared: cloning the handle shares the
//! fuel counter and deadline, so one budget can bound a whole parallel
//! module compile.

use std::cell::RefCell;
use std::sync::atomic::{AtomicI64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which limit a cancelled computation ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The fuel counter reached zero (or the budget was force-exhausted).
    Fuel,
}

/// The panic payload [`poll`] unwinds with on exhaustion. Catch it (via
/// `catch_unwind` + downcast) at a containment boundary; it carries the
/// poll site that observed the exhaustion.
#[derive(Debug, Clone, Copy)]
pub struct Cancelled {
    /// The [`poll`] site that observed the exhaustion.
    pub site: &'static str,
    /// Which limit ran out.
    pub kind: CancelKind,
}

#[derive(Debug)]
struct BudgetInner {
    deadline: Option<Instant>,
    /// Remaining fuel; `i64::MAX` when no fuel limit was set. Decremented
    /// once per poll, so fuel units are "budget polls survived" — a
    /// coarse, deterministic measure of pipeline work.
    fuel: AtomicI64,
    /// Latched once any limit trips (or [`Budget::exhaust`] forces it), so
    /// every subsequent poll against this budget cancels immediately —
    /// with the [`CancelKind`] of the limit that tripped first, so a
    /// deadline that passed during one function's compile is not
    /// misreported as fuel exhaustion by the next function's poll.
    /// `0` = within budget, `1` = fuel, `2` = deadline.
    tripped: AtomicU8,
}

const TRIPPED_NONE: u8 = 0;
const TRIPPED_FUEL: u8 = 1;
const TRIPPED_DEADLINE: u8 = 2;

fn trip_kind(raw: u8) -> Option<CancelKind> {
    match raw {
        TRIPPED_FUEL => Some(CancelKind::Fuel),
        TRIPPED_DEADLINE => Some(CancelKind::Deadline),
        _ => None,
    }
}

impl BudgetInner {
    /// Latches `kind` as the tripped limit; the first trip wins, and every
    /// caller is told the winning kind.
    fn trip(&self, kind: u8) -> CancelKind {
        let raw = match self.tripped.compare_exchange(
            TRIPPED_NONE,
            kind,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => kind,
            Err(prev) => prev,
        };
        trip_kind(raw).expect("a tripped budget always has a kind")
    }
}

/// A shared wall-clock + fuel budget. `Default` (and [`Budget::unlimited`])
/// is the no-limit budget, which costs nothing to poll.
#[derive(Clone, Default)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Budget::unlimited"),
            Some(inner) => f
                .debug_struct("Budget")
                .field("deadline", &inner.deadline)
                .field("fuel", &inner.fuel.load(Ordering::Relaxed))
                .field("tripped", &trip_kind(inner.tripped.load(Ordering::Relaxed)))
                .finish(),
        }
    }
}

impl Budget {
    /// The no-limit budget; [`install`](Budget::install)ing it is a no-op.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget limited by a wall-clock `timeout` (measured from now)
    /// and/or a `fuel` allowance. `Budget::new(None, None)` is unlimited.
    pub fn new(timeout: Option<Duration>, fuel: Option<u64>) -> Budget {
        if timeout.is_none() && fuel.is_none() {
            return Budget::unlimited();
        }
        Budget {
            inner: Some(Arc::new(BudgetInner {
                deadline: timeout.map(|t| Instant::now() + t),
                fuel: AtomicI64::new(
                    fuel.map(|n| i64::try_from(n).unwrap_or(i64::MAX))
                        .unwrap_or(i64::MAX),
                ),
                tripped: AtomicU8::new(TRIPPED_NONE),
            })),
        }
    }

    /// Whether this budget imposes any limit at all.
    pub fn is_limited(&self) -> bool {
        self.inner.is_some()
    }

    /// Force-exhausts the budget: every later poll against it cancels
    /// (with [`CancelKind::Fuel`]). No-op on an unlimited budget. The
    /// fault-injection harness uses this to exercise the genuine
    /// poll → unwind → degrade path rather than a simulated one.
    pub fn exhaust(&self) {
        if let Some(inner) = &self.inner {
            inner.trip(TRIPPED_FUEL);
        }
    }

    /// Checks the limits, consuming one unit of fuel. `Ok` while within
    /// budget.
    ///
    /// # Errors
    ///
    /// The [`CancelKind`] of the first limit found exhausted.
    pub fn check(&self) -> Result<(), CancelKind> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(kind) = trip_kind(inner.tripped.load(Ordering::Relaxed)) {
            return Err(kind);
        }
        if inner.fuel.fetch_sub(1, Ordering::Relaxed) <= 0 {
            return Err(inner.trip(TRIPPED_FUEL));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(inner.trip(TRIPPED_DEADLINE));
            }
        }
        Ok(())
    }

    /// Installs this budget as the current thread's innermost budget for
    /// the lifetime of the returned guard: [`poll`] calls on this thread
    /// check it. Installing an unlimited budget is a no-op (`None`), so a
    /// nested unlimited pipeline — a fixpoint group's inner pipeline, a
    /// meld pass's cleanup pipeline — never masks an outer limited budget.
    pub fn install(&self) -> Option<InstallGuard> {
        if !self.is_limited() {
            return None;
        }
        INSTALLED.with_borrow_mut(|stack| stack.push(self.clone()));
        Some(InstallGuard { _priv: () })
    }
}

thread_local! {
    /// The stack of installed (always limited) budgets of this thread.
    static INSTALLED: RefCell<Vec<Budget>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard of [`Budget::install`]; dropping it uninstalls the budget.
#[derive(Debug)]
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with_borrow_mut(|stack| {
            stack.pop().expect("install guard outlived its stack entry");
        });
    }
}

/// Polls the current thread's innermost installed budget, consuming one
/// unit of fuel. Returns immediately (a thread-local check) when no budget
/// is installed. On exhaustion, unwinds with a [`Cancelled`] payload
/// naming `site` — callers at a containment boundary catch it and degrade.
#[inline]
pub fn poll(site: &'static str) {
    let kind = INSTALLED.with_borrow(|stack| stack.last().map(|b| b.check().err()));
    match kind {
        None | Some(None) => {}
        Some(Some(kind)) => std::panic::panic_any(Cancelled { site, kind }),
    }
}

/// Force-exhausts the current thread's innermost installed budget (see
/// [`Budget::exhaust`]); a no-op when none is installed.
pub fn exhaust_current() {
    INSTALLED.with_borrow(|stack| {
        if let Some(b) = stack.last() {
            b.exhaust();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(b.install().is_none());
        for _ in 0..10_000 {
            assert!(b.check().is_ok());
        }
        // poll with nothing installed is a no-op.
        poll("test::site");
    }

    #[test]
    fn fuel_runs_out_exactly_after_n_checks() {
        let b = Budget::new(None, Some(3));
        assert!(b.check().is_ok());
        assert!(b.check().is_ok());
        assert!(b.check().is_ok());
        assert_eq!(b.check(), Err(CancelKind::Fuel));
        // Latched: stays exhausted.
        assert_eq!(b.check(), Err(CancelKind::Fuel));
    }

    #[test]
    fn elapsed_deadline_trips_as_deadline() {
        let b = Budget::new(Some(Duration::ZERO), None);
        assert_eq!(b.check(), Err(CancelKind::Deadline));
        // The latch remembers which limit tripped: later polls (e.g. the
        // next function sharing the budget) still report the deadline,
        // not a phantom fuel exhaustion.
        assert_eq!(b.check(), Err(CancelKind::Deadline));
        assert_eq!(b.clone().check(), Err(CancelKind::Deadline));
    }

    #[test]
    fn poll_unwinds_with_a_typed_payload_and_uninstalls() {
        let b = Budget::new(None, Some(0));
        let err = std::panic::catch_unwind(|| {
            let _guard = b.install().expect("limited budget installs");
            poll("test::loop");
        })
        .expect_err("exhausted budget unwinds");
        let cancelled = err.downcast::<Cancelled>().expect("typed payload");
        assert_eq!(cancelled.site, "test::loop");
        assert_eq!(cancelled.kind, CancelKind::Fuel);
        // The guard dropped during the unwind: nothing remains installed.
        poll("test::after");
    }

    #[test]
    fn clones_share_the_fuel_pool() {
        let a = Budget::new(None, Some(2));
        let b = a.clone();
        assert!(a.check().is_ok());
        assert!(b.check().is_ok());
        assert_eq!(a.check(), Err(CancelKind::Fuel));
        assert_eq!(b.check(), Err(CancelKind::Fuel));
    }

    #[test]
    fn exhaust_current_targets_the_innermost_budget() {
        let b = Budget::new(None, Some(1_000));
        let _guard = b.install().unwrap();
        exhaust_current();
        assert_eq!(b.check(), Err(CancelKind::Fuel));
    }
}
