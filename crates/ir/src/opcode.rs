//! Instruction opcodes.

use crate::types::Type;
use std::fmt;

/// Grid/block dimension selector for GPU intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    /// x dimension.
    X,
    /// y dimension.
    Y,
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::X => write!(f, "x"),
            Dim::Y => write!(f, "y"),
        }
    }
}

/// Integer comparison predicates (LLVM `icmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum IcmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl IcmpPred {
    /// The predicate with operand order swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> IcmpPred {
        use IcmpPred::*;
        match self {
            Eq => Eq,
            Ne => Ne,
            Slt => Sgt,
            Sle => Sge,
            Sgt => Slt,
            Sge => Sle,
            Ult => Ugt,
            Ule => Uge,
            Ugt => Ult,
            Uge => Ule,
        }
    }

    /// Textual mnemonic (`slt`, `uge`, ...).
    pub fn mnemonic(self) -> &'static str {
        use IcmpPred::*;
        match self {
            Eq => "eq",
            Ne => "ne",
            Slt => "slt",
            Sle => "sle",
            Sgt => "sgt",
            Sge => "sge",
            Ult => "ult",
            Ule => "ule",
            Ugt => "ugt",
            Uge => "uge",
        }
    }
}

/// Float comparison predicates (ordered subset of LLVM `fcmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum FcmpPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

impl FcmpPred {
    /// Textual mnemonic (`oeq`, `olt`, ...).
    pub fn mnemonic(self) -> &'static str {
        use FcmpPred::*;
        match self {
            Oeq => "oeq",
            One => "one",
            Olt => "olt",
            Ole => "ole",
            Ogt => "ogt",
            Oge => "oge",
        }
    }
}

/// Instruction opcodes.
///
/// The set mirrors the LLVM-IR subset that appears in the paper's kernels:
/// integer/float arithmetic, comparisons, `select`, casts, typed memory
/// access in two address spaces, GPU intrinsics, φ-nodes and terminators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // ---- integer binary ----
    /// Integer addition. Operands: `(a, b)`.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Signed division.
    SDiv,
    /// Signed remainder.
    SRem,
    /// Unsigned division.
    UDiv,
    /// Unsigned remainder.
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,

    // ---- float binary ----
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,

    // ---- float unary ----
    /// Square root intrinsic.
    FSqrt,
    /// Absolute value intrinsic.
    FAbs,
    /// Negation.
    FNeg,
    /// Exponential intrinsic.
    FExp,

    // ---- comparisons & select ----
    /// Integer comparison; result is `i1`.
    Icmp(IcmpPred),
    /// Float comparison; result is `i1`.
    Fcmp(FcmpPred),
    /// `select cond, a, b`. Operands: `(cond, a, b)`.
    Select,

    // ---- casts ----
    /// Zero extension (i1/i32 → i32/i64).
    Zext,
    /// Sign extension.
    Sext,
    /// Truncation (i64 → i32, i32 → i1).
    Trunc,
    /// Signed int → float.
    SiToFp,
    /// Float → signed int.
    FpToSi,

    // ---- memory ----
    /// Load of the instruction's result type through a pointer operand.
    Load,
    /// `store value, ptr`. The stored type is the type of operand 0.
    Store,
    /// Pointer arithmetic: `ptr + index * size_of(elem)`. Operands `(ptr, index)`.
    Gep {
        /// Element type the index strides over.
        elem: Type,
    },

    // ---- GPU intrinsics ----
    /// Thread index within the block (divergence root).
    ThreadIdx(Dim),
    /// Block index within the grid (uniform).
    BlockIdx(Dim),
    /// Threads per block (uniform).
    BlockDim(Dim),
    /// Blocks per grid (uniform).
    GridDim(Dim),
    /// Base pointer of the function's n-th shared-memory array.
    SharedBase(u32),
    /// Block-wide barrier (`__syncthreads`).
    Syncthreads,
    /// Warp-level ballot (returns an `i64` lane mask). Melding must skip
    /// subgraphs containing warp-level intrinsics (§IV-C).
    Ballot,

    // ---- SSA ----
    /// φ-node. Operand k flows in from `phi_blocks[k]`.
    Phi,

    // ---- terminators ----
    /// Conditional branch. Operands: `(cond)`; successors `[then, else]`.
    Br,
    /// Unconditional branch. Successors `[target]`.
    Jump,
    /// Function return. Operands: `()` or `(value)`.
    Ret,
}

impl Opcode {
    /// Whether this opcode ends a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(self, Opcode::Br | Opcode::Jump | Opcode::Ret)
    }

    /// Whether this is a φ-node.
    pub fn is_phi(self) -> bool {
        matches!(self, Opcode::Phi)
    }

    /// Whether the instruction reads or writes memory.
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Whether removing an otherwise-unused instance changes behaviour.
    pub fn has_side_effects(self) -> bool {
        matches!(
            self,
            Opcode::Store
                | Opcode::Syncthreads
                | Opcode::Ballot
                | Opcode::Br
                | Opcode::Jump
                | Opcode::Ret
        )
    }

    /// Warp-level intrinsics: subgraphs containing them are never melded
    /// because melding them can deadlock (§IV-C).
    pub fn is_warp_intrinsic(self) -> bool {
        matches!(self, Opcode::Ballot)
    }

    /// Whether `op(a, b) == op(b, a)`.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Mul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::FAdd
                | Opcode::FMul
        )
    }

    /// Textual mnemonic used by the printer.
    pub fn mnemonic(self) -> String {
        match self {
            Opcode::Add => "add".into(),
            Opcode::Sub => "sub".into(),
            Opcode::Mul => "mul".into(),
            Opcode::SDiv => "sdiv".into(),
            Opcode::SRem => "srem".into(),
            Opcode::UDiv => "udiv".into(),
            Opcode::URem => "urem".into(),
            Opcode::And => "and".into(),
            Opcode::Or => "or".into(),
            Opcode::Xor => "xor".into(),
            Opcode::Shl => "shl".into(),
            Opcode::LShr => "lshr".into(),
            Opcode::AShr => "ashr".into(),
            Opcode::FAdd => "fadd".into(),
            Opcode::FSub => "fsub".into(),
            Opcode::FMul => "fmul".into(),
            Opcode::FDiv => "fdiv".into(),
            Opcode::FSqrt => "fsqrt".into(),
            Opcode::FAbs => "fabs".into(),
            Opcode::FNeg => "fneg".into(),
            Opcode::FExp => "fexp".into(),
            Opcode::Icmp(p) => format!("icmp {}", p.mnemonic()),
            Opcode::Fcmp(p) => format!("fcmp {}", p.mnemonic()),
            Opcode::Select => "select".into(),
            Opcode::Zext => "zext".into(),
            Opcode::Sext => "sext".into(),
            Opcode::Trunc => "trunc".into(),
            Opcode::SiToFp => "sitofp".into(),
            Opcode::FpToSi => "fptosi".into(),
            Opcode::Load => "load".into(),
            Opcode::Store => "store".into(),
            Opcode::Gep { elem } => format!("gep {elem}"),
            Opcode::ThreadIdx(d) => format!("tid.{d}"),
            Opcode::BlockIdx(d) => format!("ctaid.{d}"),
            Opcode::BlockDim(d) => format!("ntid.{d}"),
            Opcode::GridDim(d) => format!("nctaid.{d}"),
            Opcode::SharedBase(i) => format!("shared.base {i}"),
            Opcode::Syncthreads => "bar.sync".into(),
            Opcode::Ballot => "ballot".into(),
            Opcode::Phi => "phi".into(),
            Opcode::Br => "br".into(),
            Opcode::Jump => "jump".into(),
            Opcode::Ret => "ret".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::Jump.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Add.is_terminator());
        assert!(!Opcode::Phi.is_terminator());
    }

    #[test]
    fn side_effects() {
        assert!(Opcode::Store.has_side_effects());
        assert!(Opcode::Syncthreads.has_side_effects());
        assert!(!Opcode::Load.has_side_effects());
        assert!(!Opcode::Add.has_side_effects());
    }

    #[test]
    fn swapped_predicates_are_involutions() {
        use IcmpPred::*;
        for p in [Eq, Ne, Slt, Sle, Sgt, Sge, Ult, Ule, Ugt, Uge] {
            assert_eq!(p.swapped().swapped(), p);
        }
        assert_eq!(Slt.swapped(), Sgt);
        assert_eq!(Ule.swapped(), Uge);
    }

    #[test]
    fn warp_intrinsics() {
        assert!(Opcode::Ballot.is_warp_intrinsic());
        assert!(!Opcode::Syncthreads.is_warp_intrinsic());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Opcode::Icmp(IcmpPred::Slt).mnemonic(), "icmp slt");
        assert_eq!(Opcode::Gep { elem: Type::I32 }.mnemonic(), "gep i32");
        assert_eq!(Opcode::ThreadIdx(Dim::X).mnemonic(), "tid.x");
    }
}
