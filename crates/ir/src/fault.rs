//! Deterministic fault injection for the compilation stack.
//!
//! Transform and analysis hot spots are annotated with named
//! [`point`]`("meld::plan")` sites. With the `fault-injection` cargo
//! feature **off** (the default) every site compiles to an empty inline
//! function — zero cost on the fault-free hot path. With the feature on, a
//! single global [`FaultPlan`] — set through [`set_plan`] or the
//! `DARM_FAULT` environment variable — arms exactly one site: the plan's
//! fault fires when the named site is hit for the `hit`-th time *within a
//! function's compilation* (hit counters reset at [`begin_function`],
//! which the per-function containment boundary in `darm-pipeline` calls).
//!
//! Counting per function is what makes injection deterministic and
//! reproducible: a function faults if and only if its fault-free compile
//! trace reaches the site at least `hit` times, independent of module
//! order, worker count, or scheduling. The fault-injection proptests in
//! the root crate lean on exactly that property.
//!
//! Fault kinds:
//!
//! * [`FaultKind::Panic`] / [`FaultKind::Error`] unwind with a typed
//!   [`InjectedFault`] payload (the containment boundary maps the kind to
//!   a panic- or error-caused diagnostic);
//! * [`FaultKind::FuelExhaust`] force-exhausts the innermost installed
//!   [`Budget`](crate::budget::Budget) — the *next* budget poll then takes
//!   the genuine cancellation path. A no-op when no limited budget is
//!   installed.
//!
//! `DARM_FAULT` syntax: `<site>[#<hit>]=<kind>` with `kind` one of
//! `panic`, `error`, `fuel` — e.g. `DARM_FAULT='meld::score#3=panic'`.
//!
//! Beyond the pipeline sites, the `darm serve` compile service arms four
//! service-layer sites: `serve::admit` (before queue admission),
//! `serve::worker` (top of each worker iteration), `serve::cache_lookup`
//! and `serve::cache_insert` (before the respective cache lock holds).
//! Their hit counters live in the same per-thread table, so a pipeline
//! containment boundary running on the same thread resets them too —
//! serve-site plans therefore conventionally use `#1`.

/// What an armed [`FaultPlan`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind as an unexpected pass panic.
    Panic,
    /// Unwind, classified as an internal error by the catcher.
    Error,
    /// Force-exhaust the innermost installed budget (see module docs).
    FuelExhaust,
}

/// One armed fault: `kind` fires at the `hit`-th arrival at `site` within
/// a single function's compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The [`point`] site name to arm.
    pub site: String,
    /// Which per-function arrival fires (1-based; 1 = the first).
    pub hit: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Parses the `DARM_FAULT` syntax (see module docs).
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed input.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let (lhs, kind) = text
            .split_once('=')
            .ok_or_else(|| format!("fault plan `{text}`: expected `<site>[#<hit>]=<kind>`"))?;
        let kind = match kind {
            "panic" => FaultKind::Panic,
            "error" => FaultKind::Error,
            "fuel" => FaultKind::FuelExhaust,
            other => return Err(format!("unknown fault kind `{other}` (panic, error, fuel)")),
        };
        let (site, hit) = match lhs.split_once('#') {
            Some((site, hit)) => {
                let hit: u64 = hit
                    .parse()
                    .map_err(|_| format!("bad hit count `{hit}` in fault plan"))?;
                (site, hit.max(1))
            }
            None => (lhs, 1),
        };
        if site.is_empty() {
            return Err(format!("fault plan `{text}`: empty site name"));
        }
        Ok(FaultPlan {
            site: site.to_string(),
            hit,
            kind,
        })
    }
}

/// The panic payload an injected [`FaultKind::Panic`] or
/// [`FaultKind::Error`] unwinds with; containment boundaries downcast it.
#[derive(Debug, Clone, Copy)]
pub struct InjectedFault {
    /// The [`point`] site that fired.
    pub site: &'static str,
    /// [`FaultKind::Panic`] or [`FaultKind::Error`].
    pub kind: FaultKind,
}

/// Whether fault injection is compiled in (`fault-injection` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "fault-injection")
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::{FaultKind, FaultPlan, InjectedFault};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Once, RwLock};

    /// Fast gate read by every [`point`](super::point): true iff a plan is
    /// armed.
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);
    static ENV_INIT: Once = Once::new();

    thread_local! {
        /// Per-site arrival counts since the last `begin_function` on this
        /// thread. A plain vec: the site list is tiny and scan beats hash.
        static HITS: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
    }

    fn ensure_env_init() {
        ENV_INIT.call_once(|| {
            if let Ok(text) = std::env::var("DARM_FAULT") {
                match FaultPlan::parse(&text) {
                    Ok(plan) => install(Some(plan)),
                    Err(e) => eprintln!("warning: ignoring DARM_FAULT: {e}"),
                }
            }
        });
    }

    fn install(plan: Option<FaultPlan>) {
        let active = plan.is_some();
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = plan;
        ACTIVE.store(active, Ordering::Release);
    }

    /// Arms `plan` (replacing any previous one); `None` disarms.
    pub fn set_plan(plan: Option<FaultPlan>) {
        ensure_env_init(); // claim the Once so the env cannot overwrite us
        install(plan);
    }

    /// The currently armed plan.
    pub fn plan() -> Option<FaultPlan> {
        ensure_env_init();
        PLAN.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Resets the per-function site hit counters of this thread.
    /// Containment boundaries call this before each function's pipeline.
    pub fn begin_function() {
        ensure_env_init();
        HITS.with_borrow_mut(|hits| hits.clear());
    }

    /// A named fault-injection site: fires the armed [`FaultPlan`] when
    /// this is its site's `hit`-th arrival since [`begin_function`].
    pub fn point(site: &'static str) {
        ensure_env_init();
        if !ACTIVE.load(Ordering::Acquire) {
            return;
        }
        let fire = {
            let guard = PLAN.read().unwrap_or_else(|e| e.into_inner());
            let Some(plan) = guard.as_ref() else { return };
            if plan.site != site {
                return;
            }
            let count =
                HITS.with_borrow_mut(|hits| match hits.iter_mut().find(|(s, _)| *s == site) {
                    Some((_, n)) => {
                        *n += 1;
                        *n
                    }
                    None => {
                        hits.push((site, 1));
                        1
                    }
                });
            (count == plan.hit).then_some(plan.kind)
        };
        match fire {
            None => {}
            Some(FaultKind::FuelExhaust) => crate::budget::exhaust_current(),
            Some(kind @ (FaultKind::Panic | FaultKind::Error)) => {
                std::panic::panic_any(InjectedFault { site, kind })
            }
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use imp::{begin_function, plan, point, set_plan};

/// Arms `plan` (replacing any previous one); `None` disarms. A no-op
/// without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
pub fn set_plan(_plan: Option<FaultPlan>) {}

/// The currently armed plan. Always `None` without the `fault-injection`
/// feature.
#[cfg(not(feature = "fault-injection"))]
pub fn plan() -> Option<FaultPlan> {
    None
}

/// Resets the per-function site hit counters of this thread. Containment
/// boundaries call this before each function's pipeline. A no-op without
/// the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn begin_function() {}

/// A named fault-injection site. Compiles to nothing without the
/// `fault-injection` feature; with it, fires the armed [`FaultPlan`] when
/// this is its site's `hit`-th arrival since [`begin_function`].
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn point(_site: &'static str) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parsing_covers_the_env_syntax() {
        assert_eq!(
            FaultPlan::parse("meld::plan=panic").unwrap(),
            FaultPlan {
                site: "meld::plan".into(),
                hit: 1,
                kind: FaultKind::Panic,
            }
        );
        assert_eq!(
            FaultPlan::parse("meld::score#3=fuel").unwrap(),
            FaultPlan {
                site: "meld::score".into(),
                hit: 3,
                kind: FaultKind::FuelExhaust,
            }
        );
        assert_eq!(FaultPlan::parse("a=error").unwrap().kind, FaultKind::Error);
        assert!(FaultPlan::parse("nokind").is_err());
        assert!(FaultPlan::parse("a=frob").is_err());
        assert!(FaultPlan::parse("a#x=panic").is_err());
        assert!(FaultPlan::parse("=panic").is_err());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn points_fire_on_the_armed_hit_only() {
        // Serialized against other plan users by being the only
        // plan-mutating test in this crate.
        set_plan(Some(FaultPlan {
            site: "test::site".into(),
            hit: 2,
            kind: FaultKind::Panic,
        }));
        begin_function();
        point("test::other"); // different site: never fires
        point("test::site"); // hit 1 of 2
        let err = std::panic::catch_unwind(|| point("test::site")).expect_err("hit 2 fires");
        let fault = err.downcast::<InjectedFault>().expect("typed payload");
        assert_eq!(fault.site, "test::site");
        assert_eq!(fault.kind, FaultKind::Panic);
        // A new function gets fresh counters: hit 1 again, no fire.
        begin_function();
        point("test::site");
        set_plan(None);
        begin_function();
        point("test::site");
        point("test::site");
    }
}
