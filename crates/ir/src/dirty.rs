//! Mutation tracking: the journal a [`Function`](crate::Function) keeps of
//! every IR edit, and the [`DirtyDelta`] consumers replay it into.
//!
//! Every mutation API on `Function` appends compact [`DirtyEvent`]s to an
//! internal [`MutationJournal`]. A consumer (an analysis manager updating
//! incrementally, a cleanup pass restricting its rescan to what changed)
//! remembers a [`JournalCursor`] and later asks
//! [`Function::dirty_since`](crate::Function::dirty_since) for everything
//! that happened after it. The replayed [`DirtyDelta`] answers the three
//! questions incremental consumers have:
//!
//! * **which blocks were touched** (instruction lists or contents changed),
//! * **which instructions were touched** — including RAUW-reached users and
//!   the operand definitions of removed/rewritten instructions (their use
//!   counts changed, which is what dead-code elimination cares about),
//! * **how the block graph changed** — an ordered [`CfgEdit`] log precise
//!   enough for incremental dominator maintenance, or a saturation flag
//!   when an edit escaped precise tracking.
//!
//! Cursors are tied to one function *instance*: cloning a function starts a
//! fresh, empty journal under a new identity, so a stale cursor from the
//! original can never silently alias into the clone — it replays as
//! [saturated](DirtyDelta::is_saturated), which consumers must treat as
//! "anything may have changed" (i.e. fall back to a whole-function pass).
//! The same graceful degradation applies after journal truncation.

use crate::function::{BlockId, InstId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic source of per-`Function`-instance journal identities.
static NEXT_JOURNAL_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_journal_id() -> u64 {
    NEXT_JOURNAL_ID.fetch_add(1, Ordering::Relaxed)
}

/// One recorded mutation. Events are deliberately low-level — the mutation
/// APIs emit them mechanically, and [`DirtyDelta`] derives the higher-level
/// views (touched sets, edge edits) during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtyEvent {
    /// A block's instruction list or contents changed.
    Block(BlockId),
    /// An instruction was added, removed, or had its data touched (this
    /// includes pre-mutation operand definitions of rewritten/removed
    /// instructions, whose use counts changed).
    Inst(InstId),
    /// A new block was created.
    BlockAdded(BlockId),
    /// A block was tombstoned.
    BlockRemoved(BlockId),
    /// A control-flow edge `from → to` came into existence.
    EdgeInserted(BlockId, BlockId),
    /// A control-flow edge `from → to` was removed.
    EdgeDeleted(BlockId, BlockId),
    /// An edit escaped precise tracking (e.g. a terminator mutated through
    /// the raw [`inst_mut`](crate::Function::inst_mut) escape hatch).
    /// Replays as full saturation.
    Saturate,
}

/// The append-only event log a [`Function`](crate::Function) carries.
#[derive(Debug, Clone, Default)]
pub struct MutationJournal {
    id: u64,
    /// Sequence number of `events[0]` — non-zero after truncation.
    base: u64,
    /// Running count of block-graph events (block added/removed, edge
    /// inserted/deleted) over the journal's whole life. Cursors snapshot
    /// it, making "did the shape change in this window" an O(1)
    /// subtraction.
    shape_total: u64,
    /// Running count of saturation events, snapshotted the same way.
    saturate_total: u64,
    events: Vec<DirtyEvent>,
}

impl MutationJournal {
    /// A fresh, empty journal with a new identity.
    pub fn new() -> MutationJournal {
        MutationJournal {
            id: fresh_journal_id(),
            base: 0,
            shape_total: 0,
            saturate_total: 0,
            events: Vec::new(),
        }
    }

    /// Appends one event.
    #[inline]
    pub fn record(&mut self, ev: DirtyEvent) {
        match ev {
            DirtyEvent::Block(_) | DirtyEvent::Inst(_) => {}
            DirtyEvent::Saturate => self.saturate_total += 1,
            _ => self.shape_total += 1,
        }
        self.events.push(ev);
    }

    /// The cursor marking "now": replaying from it yields nothing (yet).
    pub fn head(&self) -> JournalCursor {
        JournalCursor {
            id: self.id,
            seq: self.base + self.events.len() as u64,
            shape_seq: self.shape_total,
            saturate_seq: self.saturate_total,
        }
    }

    /// O(1) classification of the window after `cursor`.
    pub fn probe(&self, cursor: JournalCursor) -> WindowProbe {
        if cursor.id != self.id
            || cursor.seq < self.base
            || self.saturate_total > cursor.saturate_seq
        {
            return WindowProbe::Saturated;
        }
        let events = (self.base + self.events.len() as u64 - cursor.seq) as usize;
        if events == 0 {
            return WindowProbe::Clean;
        }
        let shape_events = (self.shape_total - cursor.shape_seq) as usize;
        if shape_events == 0 {
            WindowProbe::InstsOnly { events }
        } else {
            WindowProbe::Shape {
                events,
                shape_events,
            }
        }
    }

    /// Number of events currently buffered (not counting truncated ones).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all buffered events. Cursors taken before the truncation point
    /// replay as saturated afterwards — always safe, never silently wrong.
    pub fn truncate(&mut self) {
        self.base += self.events.len() as u64;
        self.events.clear();
    }

    /// Starts an entirely new identity (used on clone): any cursor from the
    /// previous identity replays as saturated.
    pub fn reset_identity(&mut self) {
        self.id = fresh_journal_id();
        self.base = 0;
        self.events.clear();
    }

    /// Replays the events after `cursor` into a [`DirtyDelta`].
    pub fn replay_since(&self, cursor: JournalCursor) -> DirtyDelta {
        if cursor.id != self.id || cursor.seq < self.base {
            return DirtyDelta::saturated();
        }
        let start = (cursor.seq - self.base) as usize;
        let mut delta = DirtyDelta::default();
        for &ev in &self.events[start.min(self.events.len())..] {
            delta.absorb_event(ev);
        }
        delta
    }

    /// Number of events recorded after `cursor`, or `None` when the cursor
    /// saturated. O(1) — lets consumers decide whether replaying a window
    /// is cheaper than a whole-function pass before paying for the replay.
    pub fn events_since(&self, cursor: JournalCursor) -> Option<usize> {
        if cursor.id != self.id || cursor.seq < self.base {
            return None;
        }
        let start = ((cursor.seq - self.base) as usize).min(self.events.len());
        Some(self.events.len() - start)
    }

    /// Replays just the [`CfgEdit`]s after `cursor` into `out` (cleared
    /// first) — the block-graph slice of the window without the dirty
    /// block/instruction bitsets a full [`DirtyDelta`] builds. Returns
    /// `false` on saturation (foreign cursor, truncation, or a saturate
    /// event inside the window).
    pub fn cfg_edits_since(&self, cursor: JournalCursor, out: &mut Vec<CfgEdit>) -> bool {
        out.clear();
        if cursor.id != self.id || cursor.seq < self.base {
            return false;
        }
        let start = (cursor.seq - self.base) as usize;
        for &ev in &self.events[start.min(self.events.len())..] {
            match ev {
                DirtyEvent::BlockAdded(b) => out.push(CfgEdit::BlockAdded(b)),
                DirtyEvent::BlockRemoved(b) => out.push(CfgEdit::BlockRemoved(b)),
                DirtyEvent::EdgeInserted(u, v) => out.push(CfgEdit::EdgeInserted(u, v)),
                DirtyEvent::EdgeDeleted(u, v) => out.push(CfgEdit::EdgeDeleted(u, v)),
                DirtyEvent::Saturate => return false,
                DirtyEvent::Block(_) | DirtyEvent::Inst(_) => {}
            }
        }
        true
    }

    /// Visits just the instruction ids touched after `cursor` (no
    /// allocation). Returns `false` on saturation.
    pub fn visit_insts_since(&self, cursor: JournalCursor, mut f: impl FnMut(InstId)) -> bool {
        if cursor.id != self.id || cursor.seq < self.base {
            return false;
        }
        let start = (cursor.seq - self.base) as usize;
        for &ev in &self.events[start.min(self.events.len())..] {
            match ev {
                DirtyEvent::Inst(id) => f(id),
                DirtyEvent::Saturate => return false,
                _ => {}
            }
        }
        true
    }
}

/// A position in a [`MutationJournal`]. Obtain via
/// [`Function::journal_head`](crate::Function::journal_head); replay with
/// [`Function::dirty_since`](crate::Function::dirty_since), or classify the
/// window in O(1) with [`Function::probe_since`](crate::Function::probe_since).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalCursor {
    id: u64,
    seq: u64,
    /// Snapshot of the journal's running shape-event count.
    shape_seq: u64,
    /// Snapshot of the journal's running saturation count.
    saturate_seq: u64,
}

/// O(1) classification of a journal window (see
/// [`Function::probe_since`](crate::Function::probe_since)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowProbe {
    /// Nothing happened in the window.
    Clean,
    /// Instructions changed; the block graph is intact.
    InstsOnly {
        /// Total events in the window.
        events: usize,
    },
    /// The block graph changed.
    Shape {
        /// Total events in the window.
        events: usize,
        /// Block-graph events among them.
        shape_events: usize,
    },
    /// The cursor is stale (foreign journal, truncation, or an untracked
    /// mutation) — anything may have changed.
    Saturated,
}

/// A growable bitset over block arena indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockSet {
    words: Vec<u64>,
}

impl BlockSet {
    /// Inserts `b`; returns whether it was newly added.
    pub fn insert(&mut self, b: BlockId) -> bool {
        let i = b.index();
        if i / 64 >= self.words.len() {
            self.words.resize(i / 64 + 1, 0);
        }
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Whether `b` is in the set.
    pub fn contains(&self, b: BlockId) -> bool {
        let i = b.index();
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Elements in ascending arena order.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(BlockId::new(wi * 64 + bit as usize))
            })
        })
    }

    /// Adds every element of `other`.
    pub fn union_with(&mut self, other: &BlockSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
}

/// A growable bitset over instruction arena indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtyInstSet {
    words: Vec<u64>,
}

impl DirtyInstSet {
    /// Inserts `id`.
    pub fn insert(&mut self, id: InstId) {
        let i = id.index();
        if i / 64 >= self.words.len() {
            self.words.resize(i / 64 + 1, 0);
        }
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: InstId) -> bool {
        let i = id.index();
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Elements in ascending arena order.
    pub fn iter(&self) -> impl Iterator<Item = InstId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(InstId::new(wi * 64 + bit as usize))
            })
        })
    }

    /// Adds every element of `other`.
    pub fn union_with(&mut self, other: &DirtyInstSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
}

/// One block-graph edit, in journal order — the unit incremental dominator
/// maintenance consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfgEdit {
    /// A new block appeared.
    BlockAdded(BlockId),
    /// A block was tombstoned.
    BlockRemoved(BlockId),
    /// Edge `from → to` inserted.
    EdgeInserted(BlockId, BlockId),
    /// Edge `from → to` deleted.
    EdgeDeleted(BlockId, BlockId),
}

/// The replayed view of a journal window: what changed since a cursor.
#[derive(Debug, Clone, Default)]
pub struct DirtyDelta {
    saturated: bool,
    /// Blocks whose instruction lists or contents changed.
    pub blocks: BlockSet,
    /// Instructions touched (added, removed, rewritten, or definitions
    /// whose use counts changed).
    pub insts: DirtyInstSet,
    /// Ordered block-graph edits (empty when the shape is intact).
    pub edits: Vec<CfgEdit>,
}

impl DirtyDelta {
    /// A delta meaning "anything may have changed".
    pub fn saturated() -> DirtyDelta {
        DirtyDelta {
            saturated: true,
            ..DirtyDelta::default()
        }
    }

    /// Whether precise tracking was lost — consumers must fall back to
    /// whole-function behavior.
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Whether nothing at all changed in the window.
    pub fn is_clean(&self) -> bool {
        !self.saturated && self.blocks.is_empty() && self.insts.is_empty() && self.edits.is_empty()
    }

    /// Whether the block graph (blocks or edges) changed — the tier that
    /// invalidates shape-keyed analyses. A saturated delta counts.
    pub fn shape_changed(&self) -> bool {
        self.saturated || !self.edits.is_empty()
    }

    fn absorb_event(&mut self, ev: DirtyEvent) {
        match ev {
            DirtyEvent::Block(b) => {
                self.blocks.insert(b);
            }
            DirtyEvent::Inst(id) => self.insts.insert(id),
            DirtyEvent::BlockAdded(b) => {
                self.blocks.insert(b);
                self.edits.push(CfgEdit::BlockAdded(b));
            }
            DirtyEvent::BlockRemoved(b) => {
                self.blocks.insert(b);
                self.edits.push(CfgEdit::BlockRemoved(b));
            }
            DirtyEvent::EdgeInserted(u, v) => {
                self.blocks.insert(u);
                self.blocks.insert(v);
                self.edits.push(CfgEdit::EdgeInserted(u, v));
            }
            DirtyEvent::EdgeDeleted(u, v) => {
                self.blocks.insert(u);
                self.blocks.insert(v);
                self.edits.push(CfgEdit::EdgeDeleted(u, v));
            }
            DirtyEvent::Saturate => self.saturated = true,
        }
    }

    /// Merges `other` into `self` (saturation is sticky; edit order is
    /// `self`'s edits followed by `other`'s).
    pub fn merge(&mut self, other: &DirtyDelta) {
        self.saturated |= other.saturated;
        self.blocks.union_with(&other.blocks);
        self.insts.union_with(&other.insts);
        self.edits.extend_from_slice(&other.edits);
    }

    /// Worklist seeds for an instruction-level transform scoped to this
    /// window: every live instruction of a dirty block plus every touched
    /// live instruction, deduplicated. (The journal already extends
    /// touched instructions to RAUW-reached users and the operand
    /// definitions of removed instructions.)
    pub fn seed_insts(&self, func: &crate::function::Function) -> Vec<InstId> {
        let mut seen = vec![false; func.inst_capacity()];
        let mut work = Vec::new();
        for b in self.blocks.iter() {
            if !func.is_block_alive(b) {
                continue;
            }
            for &id in func.insts_of(b) {
                if !seen[id.index()] {
                    seen[id.index()] = true;
                    work.push(id);
                }
            }
        }
        for id in self.insts.iter() {
            if func.is_inst_alive(id) && !seen[id.index()] {
                seen[id.index()] = true;
                work.push(id);
            }
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_windows_and_saturation() {
        let mut j = MutationJournal::new();
        let c0 = j.head();
        j.record(DirtyEvent::Block(BlockId::new(3)));
        j.record(DirtyEvent::EdgeInserted(BlockId::new(0), BlockId::new(3)));
        let c1 = j.head();
        j.record(DirtyEvent::Inst(InstId::new(7)));

        let d0 = j.replay_since(c0);
        assert!(!d0.is_saturated());
        assert!(d0.blocks.contains(BlockId::new(3)));
        assert!(d0.shape_changed());
        assert!(d0.insts.contains(InstId::new(7)));

        let d1 = j.replay_since(c1);
        assert!(!d1.shape_changed());
        assert!(d1.insts.contains(InstId::new(7)));
        assert!(!d1.blocks.contains(BlockId::new(3)));

        // Truncation: old cursors saturate, the head cursor stays clean.
        j.truncate();
        assert!(j.replay_since(c0).is_saturated());
        assert!(j.replay_since(j.head()).is_clean());

        // Foreign cursors (other identity) saturate.
        let other = MutationJournal::new();
        assert!(other.replay_since(c0).is_saturated());
    }

    #[test]
    fn saturate_event_propagates() {
        let mut j = MutationJournal::new();
        let c = j.head();
        j.record(DirtyEvent::Saturate);
        assert!(j.replay_since(c).is_saturated());
        assert!(j.replay_since(c).shape_changed());
    }

    #[test]
    fn block_and_inst_sets() {
        let mut s = BlockSet::default();
        assert!(s.insert(BlockId::new(70)));
        assert!(!s.insert(BlockId::new(70)));
        assert!(s.contains(BlockId::new(70)));
        assert!(!s.contains(BlockId::new(71)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![BlockId::new(70)]);
        assert_eq!(s.len(), 1);

        let mut i = DirtyInstSet::default();
        i.insert(InstId::new(1));
        i.insert(InstId::new(130));
        assert_eq!(
            i.iter().map(InstId::index).collect::<Vec<_>>(),
            vec![1, 130]
        );
    }
}
