//! A module: an ordered collection of named [`Function`]s.
//!
//! Batch compile workloads (the benchmark suites, `darm meld` on a file
//! holding several kernels) operate on whole modules; the module driver in
//! `darm-pipeline` runs a pass pipeline over every function — serially or
//! on a worker pool, since functions are fully independent. Each function
//! keeps its own mutation journal (see [`crate::dirty`]), so incremental
//! analyses and dirty-scoped cleanups work per function exactly as they do
//! in single-function compilation; there is no module-wide journal.
//!
//! The textual form is one or more `fn @name(...) -> ty { ... }` bodies
//! (see [`crate::parser::parse_module`]); printing a module renders its
//! functions in order, separated by blank lines, and round-trips through
//! the parser.

use crate::function::Function;
use std::fmt;

/// An ordered collection of named functions.
///
/// Function names are unique within a module; insertion order is the
/// compilation (and printing) order. Handles into a function
/// ([`crate::BlockId`], [`crate::InstId`]) stay function-local — nothing at
/// the module level aliases into function arenas.
#[derive(Debug, Clone, Default)]
pub struct Module {
    name: String,
    functions: Vec<Function>,
}

/// Error adding a function whose name the module already holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateFunction(pub String);

impl fmt::Display for DuplicateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "duplicate function `@{}` in module", self.0)
    }
}

impl std::error::Error for DuplicateFunction {}

impl Module {
    /// An empty module with a display name (used in reports; not part of
    /// the textual form).
    pub fn new(name: &str) -> Module {
        Module {
            name: name.to_string(),
            functions: Vec::new(),
        }
    }

    /// The module's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a function, returning its index.
    ///
    /// # Errors
    ///
    /// [`DuplicateFunction`] when a function of the same name is already
    /// present (the function is returned untouched inside the error's
    /// name, not stored).
    pub fn add_function(&mut self, func: Function) -> Result<usize, DuplicateFunction> {
        if self.functions.iter().any(|f| f.name() == func.name()) {
            return Err(DuplicateFunction(func.name().to_string()));
        }
        self.functions.push(func);
        Ok(self.functions.len() - 1)
    }

    /// Builds a module from functions, erroring on duplicate names.
    ///
    /// # Errors
    ///
    /// [`DuplicateFunction`] for the first repeated name.
    pub fn from_functions(
        name: &str,
        functions: impl IntoIterator<Item = Function>,
    ) -> Result<Module, DuplicateFunction> {
        let mut m = Module::new(name);
        for f in functions {
            m.add_function(f)?;
        }
        Ok(m)
    }

    /// The functions, in insertion order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable access to the functions (names must stay unique; passes
    /// transform bodies, not names).
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// The function named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// Mutable [`Module::get`].
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name() == name)
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the module holds no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Consumes the module into its functions.
    pub fn into_functions(self) -> Vec<Function> {
        self.functions
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;

    fn trivial(name: &str) -> Function {
        let mut f = Function::new(name, vec![], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        b.ret(None);
        f
    }

    #[test]
    fn keeps_insertion_order_and_rejects_duplicates() {
        let mut m = Module::new("m");
        assert_eq!(m.add_function(trivial("a")).unwrap(), 0);
        assert_eq!(m.add_function(trivial("b")).unwrap(), 1);
        assert_eq!(
            m.add_function(trivial("a")),
            Err(DuplicateFunction("a".into()))
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.functions()[0].name(), "a");
        assert!(m.get("b").is_some());
        assert!(m.get("c").is_none());
    }

    #[test]
    fn prints_functions_separated_by_blank_lines() {
        let m = Module::from_functions("m", [trivial("a"), trivial("b")]).unwrap();
        let text = m.to_string();
        assert!(text.contains("fn @a() -> void {"), "{text}");
        assert!(text.contains("}\n\nfn @b() -> void {"), "{text}");
    }
}
