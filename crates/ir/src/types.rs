//! Value types and memory address spaces.

use std::fmt;

/// The memory space a pointer refers to.
///
/// The distinction matters to both the melding profitability model and the
/// SIMT simulator: shared (LDS) accesses are far cheaper than global ones and
/// are the accesses whose melding the paper identifies as most profitable
/// (§VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddrSpace {
    /// Device global memory (coalesced by cache-line segment).
    Global,
    /// Per-thread-block shared memory (LDS).
    Shared,
}

impl fmt::Display for AddrSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrSpace::Global => write!(f, "global"),
            AddrSpace::Shared => write!(f, "shared"),
        }
    }
}

/// First-class types of the IR.
///
/// Pointers are *opaque* (as in modern LLVM): the pointee type lives on the
/// load/store instruction, not on the pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// No value (function return type of kernels, result of stores, ...).
    Void,
    /// 1-bit boolean (comparison results, branch conditions).
    I1,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// Opaque pointer into the given address space.
    Ptr(AddrSpace),
}

impl Type {
    /// Size in bytes when stored to memory.
    ///
    /// # Panics
    ///
    /// Panics for [`Type::Void`], which has no storage size.
    pub fn size_bytes(self) -> u64 {
        match self {
            Type::Void => panic!("void has no size"),
            Type::I1 => 1,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::Ptr(_) => 8,
        }
    }

    /// Whether this is any integer type (including `i1`).
    pub fn is_int(self) -> bool {
        matches!(self, Type::I1 | Type::I32 | Type::I64)
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32)
    }

    /// Whether this is a pointer type.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::I1 => write!(f, "i1"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::F32 => write!(f, "f32"),
            Type::Ptr(space) => write!(f, "ptr({space})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::I1.size_bytes(), 1);
        assert_eq!(Type::I32.size_bytes(), 4);
        assert_eq!(Type::F32.size_bytes(), 4);
        assert_eq!(Type::I64.size_bytes(), 8);
        assert_eq!(Type::Ptr(AddrSpace::Global).size_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "void has no size")]
    fn void_has_no_size() {
        Type::Void.size_bytes();
    }

    #[test]
    fn classification() {
        assert!(Type::I1.is_int());
        assert!(Type::I32.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F32.is_float());
        assert!(Type::Ptr(AddrSpace::Shared).is_ptr());
        assert!(!Type::Void.is_ptr());
    }

    #[test]
    fn display() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::Ptr(AddrSpace::Shared).to_string(), "ptr(shared)");
        assert_eq!(Type::Ptr(AddrSpace::Global).to_string(), "ptr(global)");
    }
}
