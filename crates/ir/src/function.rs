//! Functions, basic blocks and instructions.

use crate::dirty::{CfgEdit, DirtyDelta, DirtyEvent, JournalCursor, MutationJournal, WindowProbe};
use crate::opcode::Opcode;
use crate::types::Type;
use crate::value::Value;
use std::error::Error;
use std::fmt;

/// Handle to a basic block inside a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a handle from a raw arena index.
    pub fn new(index: usize) -> BlockId {
        BlockId(index as u32)
    }

    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to an instruction inside a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(u32);

impl InstId {
    /// Creates a handle from a raw arena index.
    pub fn new(index: usize) -> InstId {
        InstId(index as u32)
    }

    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A statically-sized shared-memory (LDS) array declared by a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedArray {
    /// Human-readable name.
    pub name: String,
    /// Element type.
    pub elem: Type,
    /// Number of elements.
    pub len: u64,
}

impl SharedArray {
    /// Total byte size of the array.
    pub fn size_bytes(&self) -> u64 {
        self.elem.size_bytes() * self.len
    }
}

/// One instruction.
///
/// This is passive data: passes construct and inspect it directly. Invariants
/// (operand counts, φ incoming lists matching predecessors, terminator
/// placement) are enforced by [`Function::verify_structure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstData {
    /// What the instruction does.
    pub opcode: Opcode,
    /// Result type ([`Type::Void`] for stores, barriers and terminators).
    pub ty: Type,
    /// Value operands. For φ-nodes, operand `k` flows in from
    /// `phi_blocks[k]`.
    pub operands: Vec<Value>,
    /// Incoming blocks of a φ-node (empty otherwise).
    pub phi_blocks: Vec<BlockId>,
    /// Successor blocks of a terminator (empty otherwise).
    pub succs: Vec<BlockId>,
    /// The block currently containing this instruction.
    pub block: BlockId,
}

impl InstData {
    /// Creates a plain (non-φ, non-terminator) instruction.
    pub fn new(opcode: Opcode, ty: Type, operands: Vec<Value>) -> InstData {
        InstData {
            opcode,
            ty,
            operands,
            phi_blocks: Vec::new(),
            succs: Vec::new(),
            block: BlockId::new(u32::MAX as usize),
        }
    }

    /// Creates a terminator with the given successors.
    pub fn terminator(opcode: Opcode, operands: Vec<Value>, succs: Vec<BlockId>) -> InstData {
        InstData {
            opcode,
            ty: Type::Void,
            operands,
            phi_blocks: Vec::new(),
            succs,
            block: BlockId::new(u32::MAX as usize),
        }
    }

    /// Creates a φ-node from `(pred, value)` pairs.
    pub fn phi(ty: Type, incoming: &[(BlockId, Value)]) -> InstData {
        InstData {
            opcode: Opcode::Phi,
            ty,
            operands: incoming.iter().map(|&(_, v)| v).collect(),
            phi_blocks: incoming.iter().map(|&(b, _)| b).collect(),
            succs: Vec::new(),
            block: BlockId::new(u32::MAX as usize),
        }
    }

    /// Iterates over a φ-node's `(pred, value)` pairs.
    pub fn phi_incoming(&self) -> impl Iterator<Item = (BlockId, Value)> + '_ {
        self.phi_blocks
            .iter()
            .copied()
            .zip(self.operands.iter().copied())
    }

    /// The incoming value from `pred`, if this φ has one.
    pub fn phi_value_for(&self, pred: BlockId) -> Option<Value> {
        self.phi_incoming()
            .find(|&(b, _)| b == pred)
            .map(|(_, v)| v)
    }
}

/// Structural IR violations reported by [`Function::verify_structure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A block has no terminator, or it is not the final instruction.
    BadTerminator(String),
    /// A φ-node appears after a non-φ instruction.
    PhiNotAtTop(String),
    /// A φ-node's incoming blocks disagree with the block's predecessors.
    PhiPredMismatch(String),
    /// Wrong operand count or operand/result type for an opcode.
    BadOperands(String),
    /// A reference to a removed block or instruction.
    DanglingRef(String),
    /// An SSA dominance violation (reported by `darm-analysis`).
    SsaViolation(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BadTerminator(m) => write!(f, "bad terminator: {m}"),
            IrError::PhiNotAtTop(m) => write!(f, "phi not at block top: {m}"),
            IrError::PhiPredMismatch(m) => write!(f, "phi predecessor mismatch: {m}"),
            IrError::BadOperands(m) => write!(f, "bad operands: {m}"),
            IrError::DanglingRef(m) => write!(f, "dangling reference: {m}"),
            IrError::SsaViolation(m) => write!(f, "ssa violation: {m}"),
        }
    }
}

impl Error for IrError {}

#[derive(Debug, Clone)]
struct BlockData2 {
    name: String,
    insts: Vec<InstId>,
    alive: bool,
}

/// Public view of a basic block: its name and instruction list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockData {
    /// Human-readable block label.
    pub name: String,
    /// Instructions in order; the terminator is last.
    pub insts: Vec<InstId>,
}

/// An SSA function (a GPU kernel, in this crate's intended use).
///
/// Owns arenas of blocks and instructions. Removing a block or instruction
/// tombstones it: handles stay stable, and `block_ids()` / per-block
/// instruction lists skip dead entries.
///
/// Every mutation API records what it touched in a [`MutationJournal`], so
/// incremental consumers (analysis caches, dirty-scoped cleanup passes) can
/// replay exactly what changed since a [`JournalCursor`] they remember —
/// see [`Function::journal_head`] and [`Function::dirty_since`].
#[derive(Debug)]
pub struct Function {
    name: String,
    params: Vec<Type>,
    ret: Type,
    blocks: Vec<BlockData2>,
    insts: Vec<InstData>,
    dead_insts: Vec<bool>,
    entry: BlockId,
    shared: Vec<SharedArray>,
    journal: MutationJournal,
    /// Count of non-tombstoned blocks, maintained by
    /// `add_block`/`remove_block` so [`Function::live_block_count`] is
    /// O(1) — it sits on the analysis manager's reconcile hot path.
    live_blocks: usize,
}

/// Cloning starts a fresh, empty journal under a new identity: cursors
/// taken on the original replay as saturated against the clone instead of
/// silently aliasing into an unrelated edit history.
impl Clone for Function {
    fn clone(&self) -> Function {
        Function {
            name: self.name.clone(),
            params: self.params.clone(),
            ret: self.ret,
            blocks: self.blocks.clone(),
            insts: self.insts.clone(),
            dead_insts: self.dead_insts.clone(),
            entry: self.entry,
            shared: self.shared.clone(),
            journal: MutationJournal::new(),
            live_blocks: self.live_blocks,
        }
    }
}

/// A cheap pre-pipeline copy of a [`Function`], taken with
/// [`Function::snapshot`] and applied back with [`Function::restore`].
///
/// Both directions go through [`Function::clone`], so the snapshot and
/// every restored state carry a *fresh, empty journal identity*: cursors
/// and checkpoints taken during an abandoned, half-applied pipeline replay
/// as saturated against the restored function instead of silently aliasing
/// into an edit history that no longer describes it. That property is what
/// lets a containment boundary (`darm-pipeline`) roll a function back to
/// baseline IR after a panic or budget cancellation without auditing any
/// surviving cursor.
#[derive(Debug, Clone)]
pub struct FunctionSnapshot {
    inner: Function,
}

impl FunctionSnapshot {
    /// The captured function state (e.g. for bit-identity checks).
    pub fn function(&self) -> &Function {
        &self.inner
    }
}

impl Function {
    /// Creates a function with the given parameter and return types, plus an
    /// empty `entry` block.
    pub fn new(name: &str, params: Vec<Type>, ret: Type) -> Function {
        let mut f = Function {
            name: name.to_string(),
            params,
            ret,
            blocks: Vec::new(),
            insts: Vec::new(),
            dead_insts: Vec::new(),
            entry: BlockId::new(0),
            shared: Vec::new(),
            journal: MutationJournal::new(),
            live_blocks: 0,
        };
        let entry = f.add_block("entry");
        f.entry = entry;
        f
    }

    // ---- mutation journal ----

    /// The cursor marking "now" in the mutation journal; replaying from it
    /// with [`Function::dirty_since`] yields everything mutated afterwards.
    pub fn journal_head(&self) -> JournalCursor {
        self.journal.head()
    }

    /// Replays every mutation recorded after `cursor` into a
    /// [`DirtyDelta`]. A cursor from another function instance (including a
    /// clone source) or from before a [truncation](Function::truncate_journal)
    /// replays as saturated — "anything may have changed".
    pub fn dirty_since(&self, cursor: JournalCursor) -> DirtyDelta {
        self.journal.replay_since(cursor)
    }

    /// Zero-allocation replay of just the instruction-touch events after
    /// `cursor` (worklist transforms use this to re-enqueue the users a
    /// substitution reached without building a full [`DirtyDelta`]).
    /// Returns `false` when the cursor saturated (caller must assume
    /// anything changed).
    pub fn insts_touched_since(&self, cursor: JournalCursor, f: impl FnMut(InstId)) -> bool {
        self.journal.visit_insts_since(cursor, f)
    }

    /// Replays just the block-graph edits after `cursor` into `out`
    /// (cleared first), skipping the bitset construction of a full
    /// [`DirtyDelta`] — the dominator-tree updater's replay. Returns
    /// `false` on saturation.
    pub fn cfg_edits_since(&self, cursor: JournalCursor, out: &mut Vec<CfgEdit>) -> bool {
        self.journal.cfg_edits_since(cursor, out)
    }

    /// O(1) classification of the journal window after `cursor`: clean,
    /// instruction-only, shape-changing (with event counts), or saturated.
    /// The cheap "is this window worth replaying" probe — a window with
    /// more events than the function has live instructions is better
    /// served by a whole-function pass than by replay-and-scope.
    pub fn probe_since(&self, cursor: JournalCursor) -> WindowProbe {
        self.journal.probe(cursor)
    }

    /// Drops the buffered journal events (e.g. after a driver has fully
    /// consumed them). Cursors taken earlier saturate afterwards, which is
    /// always safe for consumers (they fall back to whole-function work).
    pub fn truncate_journal(&mut self) {
        self.journal.truncate();
    }

    /// Number of journal events currently buffered.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Records that an untracked mutation happened: every open cursor
    /// window replays as saturated from here on. Escape hatch for callers
    /// mutating IR outside the journaled APIs.
    pub fn saturate_journal(&mut self) {
        self.journal.record(DirtyEvent::Saturate);
    }

    /// Captures a pre-pipeline copy of the function for later
    /// [`Function::restore`]. See [`FunctionSnapshot`] for the journal
    /// identity guarantees.
    pub fn snapshot(&self) -> FunctionSnapshot {
        FunctionSnapshot {
            inner: self.clone(),
        }
    }

    /// Replaces this function's entire state with `snapshot`'s, under a
    /// fresh journal identity (cursors taken on the abandoned state — or
    /// on a previous restore — saturate instead of aliasing). A snapshot
    /// can be restored any number of times.
    pub fn restore(&mut self, snapshot: &FunctionSnapshot) {
        *self = snapshot.inner.clone();
    }

    /// Journal size guard: past this many buffered events the journal
    /// self-truncates (old cursors degrade to saturation instead of the
    /// buffer growing without bound).
    const JOURNAL_CAP: usize = 1 << 20;

    #[inline]
    fn record(&mut self, ev: DirtyEvent) {
        if self.journal.len() >= Self::JOURNAL_CAP {
            self.journal.truncate();
        }
        self.journal.record(ev);
    }

    /// Records the use-count change of every definition the instruction's
    /// operands reference (they lose or gain a user).
    fn record_operand_defs_of(&mut self, id: InstId) {
        for k in 0..self.insts[id.index()].operands.len() {
            if let Value::Inst(def) = self.insts[id.index()].operands[k] {
                self.record(DirtyEvent::Inst(def));
            }
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the function (names are unique within a
    /// [`Module`](crate::Module); batch harnesses rename clones before
    /// collecting them into one). Not a journaled mutation — the name is
    /// not IR.
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// Parameter types.
    pub fn params(&self) -> &[Type] {
        &self.params
    }

    /// Return type.
    pub fn ret_ty(&self) -> Type {
        self.ret
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Declares a shared-memory array and returns its index (used with
    /// [`Opcode::SharedBase`]).
    pub fn add_shared_array(&mut self, name: &str, elem: Type, len: u64) -> u32 {
        self.shared.push(SharedArray {
            name: name.to_string(),
            elem,
            len,
        });
        (self.shared.len() - 1) as u32
    }

    /// The declared shared-memory arrays.
    pub fn shared_arrays(&self) -> &[SharedArray] {
        &self.shared
    }

    // ---- blocks ----

    /// Appends a new empty block. Names are uniquified (a `.N` suffix is
    /// added on collision) so the textual form stays parseable.
    pub fn add_block(&mut self, name: &str) -> BlockId {
        let taken = |blocks: &[BlockData2], n: &str| blocks.iter().any(|b| b.alive && b.name == n);
        let mut unique = name.to_string();
        let mut k = 1;
        while taken(&self.blocks, &unique) {
            unique = format!("{name}.{k}");
            k += 1;
        }
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(BlockData2 {
            name: unique,
            insts: Vec::new(),
            alive: true,
        });
        self.live_blocks += 1;
        self.record(DirtyEvent::BlockAdded(id));
        id
    }

    /// Tombstones a block and all instructions it contains.
    ///
    /// Callers are responsible for first removing every edge into the block
    /// (terminator successors and φ incoming entries elsewhere).
    pub fn remove_block(&mut self, b: BlockId) {
        // The block's own terminator edges vanish with it, and every
        // definition its instructions referenced loses a user.
        for s in self.succs(b) {
            self.record(DirtyEvent::EdgeDeleted(b, s));
        }
        let insts = std::mem::take(&mut self.blocks[b.index()].insts);
        for id in insts {
            self.record(DirtyEvent::Inst(id));
            self.record_operand_defs_of(id);
            self.dead_insts[id.index()] = true;
        }
        if self.blocks[b.index()].alive {
            self.live_blocks -= 1;
        }
        self.blocks[b.index()].alive = false;
        self.record(DirtyEvent::BlockRemoved(b));
    }

    /// Whether the block is still part of the function.
    pub fn is_block_alive(&self, b: BlockId) -> bool {
        b.index() < self.blocks.len() && self.blocks[b.index()].alive
    }

    /// All live block ids in creation order (entry first).
    pub fn block_ids(&self) -> Vec<BlockId> {
        (0..self.blocks.len())
            .map(BlockId::new)
            .filter(|&b| self.blocks[b.index()].alive)
            .collect()
    }

    /// Upper bound (exclusive) on block arena indices, for dense side tables.
    pub fn block_capacity(&self) -> usize {
        self.blocks.len()
    }

    /// Number of live (non-tombstoned) blocks — unlike
    /// [`Function::block_capacity`] this does not grow with tombstones, so
    /// it is the right scale for "is this edit batch small relative to the
    /// function" decisions.
    pub fn live_block_count(&self) -> usize {
        self.live_blocks
    }

    /// Upper bound (exclusive) on instruction arena indices.
    pub fn inst_capacity(&self) -> usize {
        self.insts.len()
    }

    /// The block's label.
    pub fn block_name(&self, b: BlockId) -> &str {
        &self.blocks[b.index()].name
    }

    /// Renames a block.
    pub fn set_block_name(&mut self, b: BlockId, name: &str) {
        self.blocks[b.index()].name = name.to_string();
    }

    /// Instruction ids of a block, in order (terminator last).
    pub fn insts_of(&self, b: BlockId) -> &[InstId] {
        &self.blocks[b.index()].insts
    }

    /// The φ-nodes at the top of a block.
    pub fn phis_of(&self, b: BlockId) -> Vec<InstId> {
        self.insts_of(b)
            .iter()
            .copied()
            .take_while(|&i| self.inst(i).opcode.is_phi())
            .collect()
    }

    /// The block's terminator, if it has one.
    pub fn terminator(&self, b: BlockId) -> Option<InstId> {
        let last = *self.blocks[b.index()].insts.last()?;
        self.inst(last).opcode.is_terminator().then_some(last)
    }

    /// Successor blocks as a borrowed slice (empty if the block has no
    /// terminator) — the allocation-free sibling of [`Function::succs`]
    /// for read-heavy consumers like the incremental dominator updater.
    pub fn succ_slice(&self, b: BlockId) -> &[BlockId] {
        match self.terminator(b) {
            Some(t) => &self.inst(t).succs,
            None => &[],
        }
    }

    /// Successor blocks (empty if the block has no terminator yet).
    pub fn succs(&self, b: BlockId) -> Vec<BlockId> {
        self.terminator(b)
            .map(|t| self.inst(t).succs.clone())
            .unwrap_or_default()
    }

    /// Predecessor lists for every block, indexed by block arena index.
    ///
    /// A block appears once per incoming *edge*, so a conditional branch with
    /// both targets equal contributes two entries.
    pub fn compute_preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.succs(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    // ---- instructions ----

    /// The instruction behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the instruction was removed.
    pub fn inst(&self, id: InstId) -> &InstData {
        assert!(
            !self.dead_insts[id.index()],
            "use of removed instruction %{}",
            id.index()
        );
        &self.insts[id.index()]
    }

    /// Mutable access to an instruction.
    ///
    /// Journal contract: the instruction, its block and its pre-mutation
    /// operand definitions are recorded as touched. For a terminator its
    /// current successor edges are conservatively recorded as possibly
    /// changed; callers must not *retarget* successors through this escape
    /// hatch (the new target would go unrecorded) — use
    /// [`Function::replace_succ`] or remove/re-add the terminator instead.
    pub fn inst_mut(&mut self, id: InstId) -> &mut InstData {
        assert!(
            !self.dead_insts[id.index()],
            "use of removed instruction %{}",
            id.index()
        );
        self.record(DirtyEvent::Inst(id));
        let block = self.insts[id.index()].block;
        self.record(DirtyEvent::Block(block));
        self.record_operand_defs_of(id);
        if !self.insts[id.index()].succs.is_empty() {
            for k in 0..self.insts[id.index()].succs.len() {
                let s = self.insts[id.index()].succs[k];
                self.record(DirtyEvent::EdgeDeleted(block, s));
                self.record(DirtyEvent::EdgeInserted(block, s));
            }
        }
        &mut self.insts[id.index()]
    }

    /// Whether the instruction is still part of the function.
    pub fn is_inst_alive(&self, id: InstId) -> bool {
        id.index() < self.insts.len() && !self.dead_insts[id.index()]
    }

    /// Appends an instruction to a block.
    pub fn add_inst(&mut self, block: BlockId, mut data: InstData) -> InstId {
        data.block = block;
        let id = InstId::new(self.insts.len());
        self.insts.push(data);
        self.dead_insts.push(false);
        self.blocks[block.index()].insts.push(id);
        self.record_inst_added(block, id);
        id
    }

    /// Inserts an instruction at a position within a block's instruction list.
    pub fn insert_inst_at(&mut self, block: BlockId, pos: usize, mut data: InstData) -> InstId {
        data.block = block;
        let id = InstId::new(self.insts.len());
        self.insts.push(data);
        self.dead_insts.push(false);
        self.blocks[block.index()].insts.insert(pos, id);
        self.record_inst_added(block, id);
        id
    }

    fn record_inst_added(&mut self, block: BlockId, id: InstId) {
        self.record(DirtyEvent::Block(block));
        self.record(DirtyEvent::Inst(id));
        for k in 0..self.insts[id.index()].succs.len() {
            let s = self.insts[id.index()].succs[k];
            self.record(DirtyEvent::EdgeInserted(block, s));
        }
    }

    /// Inserts an instruction immediately before an existing one.
    pub fn insert_inst_before(&mut self, before: InstId, data: InstData) -> InstId {
        let block = self.inst(before).block;
        let pos = self.blocks[block.index()]
            .insts
            .iter()
            .position(|&i| i == before)
            .expect("instruction not in its own block");
        self.insert_inst_at(block, pos, data)
    }

    /// Detaches and tombstones an instruction. Uses are not rewritten.
    pub fn remove_inst(&mut self, id: InstId) {
        let block = self.insts[id.index()].block;
        self.record(DirtyEvent::Inst(id));
        self.record_operand_defs_of(id);
        if self.is_block_alive(block) {
            self.record(DirtyEvent::Block(block));
            for k in 0..self.insts[id.index()].succs.len() {
                let s = self.insts[id.index()].succs[k];
                self.record(DirtyEvent::EdgeDeleted(block, s));
            }
            self.blocks[block.index()].insts.retain(|&i| i != id);
        }
        self.dead_insts[id.index()] = true;
    }

    /// The type of any value in the context of this function.
    pub fn value_ty(&self, v: Value) -> Type {
        match v {
            Value::Inst(id) => self.inst(id).ty,
            Value::Param(i) => self.params[i as usize],
            Value::I1(_) => Type::I1,
            Value::I32(_) => Type::I32,
            Value::I64(_) => Type::I64,
            Value::F32Bits(_) => Type::F32,
            Value::Undef(ty) => ty,
        }
    }

    // ---- use rewriting ----

    /// Replaces every operand use of `from` with `to` across the function.
    ///
    /// Every rewritten user (and its block) is journaled as touched, along
    /// with `from`'s definition if it is an instruction (its use count
    /// dropped to zero).
    pub fn rauw(&mut self, from: Value, to: Value) {
        let mut reached = false;
        for idx in 0..self.insts.len() {
            if self.dead_insts[idx] {
                continue;
            }
            let mut hit = false;
            for op in &mut self.insts[idx].operands {
                if *op == from {
                    *op = to;
                    hit = true;
                }
            }
            if hit {
                reached = true;
                let block = self.insts[idx].block;
                self.record(DirtyEvent::Inst(InstId::new(idx)));
                self.record(DirtyEvent::Block(block));
            }
        }
        if reached {
            if let Value::Inst(def) = from {
                self.record(DirtyEvent::Inst(def));
            }
        }
    }

    /// Calls `f` with every live instruction that uses `v` as an operand.
    pub fn users_of(&self, v: Value) -> Vec<InstId> {
        let mut users = Vec::new();
        for idx in 0..self.insts.len() {
            if self.dead_insts[idx] {
                continue;
            }
            if self.insts[idx].operands.contains(&v) {
                users.push(InstId::new(idx));
            }
        }
        users
    }

    /// Redirects every occurrence of successor `from` to `to` in `b`'s
    /// terminator. φ-nodes in `from`/`to` are *not* updated.
    pub fn replace_succ(&mut self, b: BlockId, from: BlockId, to: BlockId) {
        if let Some(t) = self.terminator(b) {
            let mut hits = 0;
            for s in &mut self.insts[t.index()].succs {
                if *s == from {
                    *s = to;
                    hits += 1;
                }
            }
            if hits > 0 {
                self.record(DirtyEvent::Inst(t));
                self.record(DirtyEvent::Block(b));
                // One event pair *per replaced occurrence*: a duplicate-
                // target branch (`br c, X, X`) carries two successor
                // entries, and the journal's edge multiset arithmetic
                // (`EditSummary::normalize`) is only exact when every
                // entry's flip is recorded.
                for _ in 0..hits {
                    self.record(DirtyEvent::EdgeDeleted(b, from));
                    self.record(DirtyEvent::EdgeInserted(b, to));
                }
            }
        }
    }

    /// Renames incoming block `old` to `new` in every φ-node of `block`.
    pub fn phi_retarget_pred(&mut self, block: BlockId, old: BlockId, new: BlockId) {
        for phi in self.phis_of(block) {
            for b in &mut self.inst_mut(phi).phi_blocks {
                if *b == old {
                    *b = new;
                }
            }
        }
    }

    /// Deletes the incoming entry for `pred` from every φ-node of `block`.
    pub fn phi_remove_incoming(&mut self, block: BlockId, pred: BlockId) {
        for phi in self.phis_of(block) {
            let inst = self.inst_mut(phi);
            let mut k = 0;
            while k < inst.phi_blocks.len() {
                if inst.phi_blocks[k] == pred {
                    inst.phi_blocks.remove(k);
                    inst.operands.remove(k);
                } else {
                    k += 1;
                }
            }
        }
    }

    /// Splits `block` before instruction-list position `at`; instructions
    /// `[at..]` (including the terminator) move to a new block, which is
    /// returned. φ-nodes in the moved terminator's successors are retargeted
    /// to the new block. The original block is left *without* a terminator;
    /// the caller must add one.
    pub fn split_block_at(&mut self, block: BlockId, at: usize, new_name: &str) -> BlockId {
        let new_block = self.add_block(new_name);
        let moved: Vec<InstId> = self.blocks[block.index()].insts.split_off(at);
        for &id in &moved {
            self.insts[id.index()].block = new_block;
            self.record(DirtyEvent::Inst(id));
        }
        self.blocks[new_block.index()].insts = moved;
        self.record(DirtyEvent::Block(block));
        self.record(DirtyEvent::Block(new_block));
        for succ in self.succs(new_block) {
            // The moved terminator's out-edges change source block.
            self.record(DirtyEvent::EdgeDeleted(block, succ));
            self.record(DirtyEvent::EdgeInserted(new_block, succ));
            self.phi_retarget_pred(succ, block, new_block);
        }
        new_block
    }

    // ---- verification ----

    /// Checks structural invariants: one terminator per block (at the end),
    /// φ-nodes contiguous at block tops with incoming lists matching the
    /// block's predecessors, no references to tombstoned blocks or
    /// instructions, and per-opcode operand/type sanity.
    ///
    /// # Errors
    ///
    /// Returns the first [`IrError`] found.
    pub fn verify_structure(&self) -> Result<(), IrError> {
        let preds = self.compute_preds();
        for b in self.block_ids() {
            let name = self.block_name(b).to_string();
            let insts = self.insts_of(b);
            let Some(&last) = insts.last() else {
                return Err(IrError::BadTerminator(format!("block {name} is empty")));
            };
            if !self.inst(last).opcode.is_terminator() {
                return Err(IrError::BadTerminator(format!(
                    "block {name} does not end in a terminator"
                )));
            }
            let mut seen_non_phi = false;
            for (k, &id) in insts.iter().enumerate() {
                if !self.is_inst_alive(id) {
                    return Err(IrError::DanglingRef(format!(
                        "dead instruction in block {name}"
                    )));
                }
                let inst = self.inst(id);
                if inst.block != b {
                    return Err(IrError::DanglingRef(format!(
                        "instruction %{} claims block {} but lives in {name}",
                        id.index(),
                        self.block_name(inst.block)
                    )));
                }
                if inst.opcode.is_terminator() && k + 1 != insts.len() {
                    return Err(IrError::BadTerminator(format!(
                        "terminator mid-block in {name}"
                    )));
                }
                if inst.opcode.is_phi() {
                    if seen_non_phi {
                        return Err(IrError::PhiNotAtTop(format!(
                            "%{} in block {name}",
                            id.index()
                        )));
                    }
                } else {
                    seen_non_phi = true;
                }
                self.verify_inst(id, &name)?;
                if inst.opcode.is_phi() {
                    let mut incoming: Vec<usize> =
                        inst.phi_blocks.iter().map(|p| p.index()).collect();
                    incoming.sort_unstable();
                    let mut actual: Vec<usize> =
                        preds[b.index()].iter().map(|p| p.index()).collect();
                    actual.sort_unstable();
                    actual.dedup();
                    let mut inc_dedup = incoming.clone();
                    inc_dedup.dedup();
                    if inc_dedup != incoming {
                        return Err(IrError::PhiPredMismatch(format!(
                            "%{} in {name} has duplicate incoming blocks",
                            id.index()
                        )));
                    }
                    if incoming != actual {
                        return Err(IrError::PhiPredMismatch(format!(
                            "%{} in {name}: incoming {:?} vs preds {:?}",
                            id.index(),
                            incoming,
                            actual
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn verify_inst(&self, id: InstId, block_name: &str) -> Result<(), IrError> {
        let inst = self.inst(id);
        let err = |msg: String| {
            Err(IrError::BadOperands(format!(
                "%{} ({}) in {block_name}: {msg}",
                id.index(),
                inst.opcode.mnemonic()
            )))
        };
        // Dangling value / successor checks.
        for &op in &inst.operands {
            if let Value::Inst(dep) = op {
                if !self.is_inst_alive(dep) {
                    return Err(IrError::DanglingRef(format!(
                        "%{} in {block_name} uses removed %{}",
                        id.index(),
                        dep.index()
                    )));
                }
            }
            if let Value::Param(p) = op {
                if p as usize >= self.params.len() {
                    return err(format!("parameter index {p} out of range"));
                }
            }
        }
        for &s in &inst.succs {
            if !self.is_block_alive(s) {
                return Err(IrError::DanglingRef(format!(
                    "branch to removed block from {block_name}"
                )));
            }
        }
        let tys: Vec<Type> = inst.operands.iter().map(|&v| self.value_ty(v)).collect();
        let n = inst.operands.len();
        use Opcode::*;
        match inst.opcode {
            Add | Sub | Mul | SDiv | SRem | UDiv | URem | And | Or | Xor | Shl | LShr | AShr => {
                if n != 2 || tys[0] != tys[1] || !tys[0].is_int() || inst.ty != tys[0] {
                    return err(format!(
                        "expected (T, T) -> T int, got {tys:?} -> {}",
                        inst.ty
                    ));
                }
            }
            FAdd | FSub | FMul | FDiv => {
                if n != 2 || tys[0] != Type::F32 || tys[1] != Type::F32 || inst.ty != Type::F32 {
                    return err(format!("expected (f32, f32) -> f32, got {tys:?}"));
                }
            }
            FSqrt | FAbs | FNeg | FExp => {
                if n != 1 || tys[0] != Type::F32 || inst.ty != Type::F32 {
                    return err(format!("expected (f32) -> f32, got {tys:?}"));
                }
            }
            Icmp(_) => {
                if n != 2
                    || tys[0] != tys[1]
                    || !(tys[0].is_int() || tys[0].is_ptr())
                    || inst.ty != Type::I1
                {
                    return err(format!("expected (int, int) -> i1, got {tys:?}"));
                }
            }
            Fcmp(_) => {
                if n != 2 || tys[0] != Type::F32 || tys[1] != Type::F32 || inst.ty != Type::I1 {
                    return err(format!("expected (f32, f32) -> i1, got {tys:?}"));
                }
            }
            Select => {
                if n != 3 || tys[0] != Type::I1 || tys[1] != tys[2] || inst.ty != tys[1] {
                    return err(format!("expected (i1, T, T) -> T, got {tys:?}"));
                }
            }
            Zext | Sext => {
                if n != 1
                    || !tys[0].is_int()
                    || !inst.ty.is_int()
                    || tys[0].size_bytes() > inst.ty.size_bytes()
                {
                    return err(format!("bad extension {tys:?} -> {}", inst.ty));
                }
            }
            Trunc => {
                if n != 1
                    || !tys[0].is_int()
                    || !inst.ty.is_int()
                    || tys[0].size_bytes() < inst.ty.size_bytes()
                {
                    return err(format!("bad truncation {tys:?} -> {}", inst.ty));
                }
            }
            SiToFp => {
                if n != 1 || !tys[0].is_int() || inst.ty != Type::F32 {
                    return err(format!("bad sitofp {tys:?}"));
                }
            }
            FpToSi => {
                if n != 1 || tys[0] != Type::F32 || !inst.ty.is_int() {
                    return err(format!("bad fptosi {tys:?}"));
                }
            }
            Load => {
                if n != 1 || !tys[0].is_ptr() || inst.ty == Type::Void {
                    return err(format!("expected (ptr) -> T, got {tys:?} -> {}", inst.ty));
                }
            }
            Store => {
                if n != 2 || !tys[1].is_ptr() || inst.ty != Type::Void {
                    return err(format!("expected (T, ptr) -> void, got {tys:?}"));
                }
            }
            Gep { .. } => {
                if n != 2 || !tys[0].is_ptr() || !tys[1].is_int() || inst.ty != tys[0] {
                    return err(format!("expected (ptr, int) -> ptr, got {tys:?}"));
                }
            }
            ThreadIdx(_) | BlockIdx(_) | BlockDim(_) | GridDim(_) => {
                if n != 0 || inst.ty != Type::I32 {
                    return err("expected () -> i32".into());
                }
            }
            SharedBase(k) => {
                if n != 0 || !inst.ty.is_ptr() {
                    return err("expected () -> ptr".into());
                }
                if k as usize >= self.shared.len() {
                    return err(format!("shared array index {k} out of range"));
                }
            }
            Syncthreads => {
                if n != 0 || inst.ty != Type::Void {
                    return err("expected () -> void".into());
                }
            }
            Ballot => {
                if n != 1 || tys[0] != Type::I1 || inst.ty != Type::I64 {
                    return err(format!("expected (i1) -> i64, got {tys:?}"));
                }
            }
            Phi => {
                if inst.phi_blocks.len() != n {
                    return err("phi incoming blocks and values differ in length".into());
                }
                for &ty in &tys {
                    if ty != inst.ty {
                        return err(format!("phi incoming type {ty} != {}", inst.ty));
                    }
                }
            }
            Br => {
                if n != 1 || tys[0] != Type::I1 || inst.succs.len() != 2 {
                    return err(format!("expected br (i1) with 2 successors, got {tys:?}"));
                }
            }
            Jump => {
                if n != 0 || inst.succs.len() != 1 {
                    return err("expected jump with 1 successor".into());
                }
            }
            Ret => {
                let ok = match self.ret {
                    Type::Void => n == 0,
                    ty => n == 1 && tys[0] == ty,
                };
                if !ok || !inst.succs.is_empty() {
                    return err(format!("return does not match function type {}", self.ret));
                }
            }
        }
        Ok(())
    }

    /// Count of live instructions (a code-size metric).
    pub fn live_inst_count(&self) -> usize {
        self.block_ids()
            .iter()
            .map(|&b| self.insts_of(b).len())
            .sum()
    }

    /// Count of conditional branches (a static divergence-surface metric).
    pub fn cond_branch_count(&self) -> usize {
        self.block_ids()
            .iter()
            .filter(|&&b| {
                self.terminator(b)
                    .is_some_and(|t| self.inst(t).opcode == Opcode::Br)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::IcmpPred;

    fn diamond() -> (Function, BlockId, BlockId, BlockId, BlockId) {
        // entry: br (p0 < 5) then else; then/else: jump exit; exit: ret
        let mut f = Function::new("diamond", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let then = f.add_block("then");
        let els = f.add_block("else");
        let exit = f.add_block("exit");
        let cmp = f.add_inst(
            entry,
            InstData::new(
                Opcode::Icmp(IcmpPred::Slt),
                Type::I1,
                vec![Value::Param(0), Value::I32(5)],
            ),
        );
        f.add_inst(
            entry,
            InstData::terminator(Opcode::Br, vec![Value::Inst(cmp)], vec![then, els]),
        );
        f.add_inst(then, InstData::terminator(Opcode::Jump, vec![], vec![exit]));
        f.add_inst(els, InstData::terminator(Opcode::Jump, vec![], vec![exit]));
        f.add_inst(exit, InstData::terminator(Opcode::Ret, vec![], vec![]));
        (f, entry, then, els, exit)
    }

    #[test]
    fn build_and_verify_diamond() {
        let (f, entry, then, els, exit) = diamond();
        assert_eq!(f.succs(entry), vec![then, els]);
        assert_eq!(f.succs(then), vec![exit]);
        let preds = f.compute_preds();
        assert_eq!(preds[exit.index()].len(), 2);
        f.verify_structure().unwrap();
    }

    #[test]
    fn phi_pred_mismatch_detected() {
        let (mut f, entry, then, _els, exit) = diamond();
        // phi with only one incoming edge at a 2-pred block must fail.
        let phi = InstData::phi(Type::I32, &[(then, Value::I32(1))]);
        f.insert_inst_at(exit, 0, phi);
        assert!(matches!(
            f.verify_structure(),
            Err(IrError::PhiPredMismatch(_))
        ));
        let _ = entry;
    }

    #[test]
    fn phi_at_top_enforced() {
        let (mut f, _e, then, els, exit) = diamond();
        let phi = InstData::phi(Type::I32, &[(then, Value::I32(1)), (els, Value::I32(2))]);
        // valid at top
        f.insert_inst_at(exit, 0, phi.clone());
        f.verify_structure().unwrap();
        // invalid after a non-phi
        let add = InstData::new(Opcode::Add, Type::I32, vec![Value::I32(1), Value::I32(2)]);
        f.insert_inst_at(exit, 1, add);
        let bad = InstData::phi(Type::I32, &[(then, Value::I32(1)), (els, Value::I32(2))]);
        f.insert_inst_at(exit, 2, bad);
        assert!(matches!(f.verify_structure(), Err(IrError::PhiNotAtTop(_))));
    }

    #[test]
    fn type_errors_detected() {
        let mut f = Function::new("bad", vec![], Type::Void);
        let e = f.entry();
        f.add_inst(
            e,
            InstData::new(
                Opcode::Add,
                Type::I32,
                vec![Value::I32(1), Value::const_f32(1.0)],
            ),
        );
        f.add_inst(e, InstData::terminator(Opcode::Ret, vec![], vec![]));
        assert!(matches!(f.verify_structure(), Err(IrError::BadOperands(_))));
    }

    #[test]
    fn rauw_replaces_uses() {
        let (mut f, entry, ..) = diamond();
        let cmp = f.insts_of(entry)[0];
        f.rauw(Value::Param(0), Value::I32(7));
        assert_eq!(f.inst(cmp).operands[0], Value::I32(7));
    }

    #[test]
    fn remove_inst_detaches() {
        let (mut f, entry, ..) = diamond();
        let cmp = f.insts_of(entry)[0];
        let term = f.terminator(entry).unwrap();
        f.inst_mut(term).operands[0] = Value::I1(true);
        f.remove_inst(cmp);
        assert_eq!(f.insts_of(entry).len(), 1);
        assert!(!f.is_inst_alive(cmp));
        f.verify_structure().unwrap();
    }

    #[test]
    fn split_block_moves_tail_and_retargets_phis() {
        let (mut f, _entry, then, els, exit) = diamond();
        let phi = InstData::phi(Type::I32, &[(then, Value::I32(1)), (els, Value::I32(2))]);
        f.insert_inst_at(exit, 0, phi);
        // split `then` before its terminator
        let cont = f.split_block_at(then, 0, "then.split");
        f.add_inst(then, InstData::terminator(Opcode::Jump, vec![], vec![cont]));
        f.verify_structure().unwrap();
        assert_eq!(f.succs(then), vec![cont]);
        assert_eq!(f.succs(cont), vec![exit]);
    }

    #[test]
    fn users_of_finds_all() {
        let (f, entry, ..) = diamond();
        let cmp = f.insts_of(entry)[0];
        let users = f.users_of(Value::Inst(cmp));
        assert_eq!(users.len(), 1); // the branch
        let _ = entry;
    }

    #[test]
    fn shared_arrays_register() {
        let mut f = Function::new("k", vec![], Type::Void);
        let idx = f.add_shared_array("tile", Type::I32, 256);
        assert_eq!(idx, 0);
        assert_eq!(f.shared_arrays()[0].size_bytes(), 1024);
    }

    #[test]
    fn replace_succ_and_phi_retarget() {
        let (mut f, entry, then, els, exit) = diamond();
        let phi = InstData::phi(Type::I32, &[(then, Value::I32(1)), (els, Value::I32(2))]);
        f.insert_inst_at(exit, 0, phi);
        // Introduce a trampoline block between `then` and `exit`.
        let tramp = f.add_block("tramp");
        f.add_inst(
            tramp,
            InstData::terminator(Opcode::Jump, vec![], vec![exit]),
        );
        f.replace_succ(then, exit, tramp);
        f.phi_retarget_pred(exit, then, tramp);
        f.verify_structure().unwrap();
        let _ = entry;
    }
}
