//! Content hashing for compile-service cache keys.
//!
//! A [`Fnv64`] is a streaming FNV-1a 64-bit hasher. It is *not* a
//! `std::hash::Hasher` replacement for hash maps — it exists so that the
//! persistent compile service (`darm-serve`) can key its cross-run cache
//! by a **stable, platform-independent content hash** of (function IR ×
//! canonical pass spec). `std`'s `DefaultHasher` is explicitly documented
//! as unstable across releases and seeds per process, which would make
//! warm-vs-cold byte-identity untestable and any future on-disk cache
//! unusable; FNV-1a over the printed text is deterministic everywhere.
//!
//! The canonical content of a function is its printed textual form — the
//! same rendering that round-trips through the parser — streamed straight
//! into the hasher through [`Fnv64`]'s `fmt::Write` impl, so hashing a
//! function ([`Function::content_hash`](crate::Function::content_hash))
//! allocates nothing.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher (see the [module docs](self) for why
/// not `std::hash`).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a single delimiter byte — used to keep concatenated fields
    /// (`spec` × `function text`) from colliding across field boundaries.
    pub fn write_u8(&mut self, byte: u8) {
        self.write(&[byte]);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

impl crate::Function {
    /// Stable content hash of this function: FNV-1a 64 over the printed
    /// textual form (the canonical, parser-round-tripping rendering), so
    /// two functions hash equal iff they print identically. Allocation
    /// free — the printer streams into the hasher.
    pub fn content_hash(&self) -> u64 {
        hash_display(self)
    }
}

/// FNV-1a 64 of a byte slice in one call.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Streams anything printable into the hasher without materializing the
/// string. `Display` failures cannot happen ([`Fnv64`]'s sink never
/// errors).
pub fn hash_display(value: &impl fmt::Display) -> u64 {
    use fmt::Write as _;
    let mut h = Fnv64::new();
    write!(h, "{value}").expect("Fnv64 sink never fails");
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // Test vectors from the FNV reference implementation.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
        assert_eq!(hash_display(&"foobar"), fnv1a_64(b"foobar"));
    }

    #[test]
    fn delimiters_separate_field_boundaries() {
        let key = |a: &str, b: &str| {
            let mut h = Fnv64::new();
            h.write(a.as_bytes());
            h.write_u8(0);
            h.write(b.as_bytes());
            h.finish()
        };
        assert_ne!(key("ab", "c"), key("a", "bc"));
    }
}
