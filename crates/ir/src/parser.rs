//! Parser for the textual IR form produced by the printer.
//!
//! Round-trips with [`Display`](std::fmt::Display): `parse(&f.to_string())`
//! reconstructs an equivalent function. Useful for golden tests and for
//! writing kernels as text.
//!
//! ```
//! use darm_ir::parser::parse_function;
//!
//! let f = parse_function(r#"
//! fn @axpy(ptr(global) %arg0, i32 %arg1) -> void {
//! entry:
//!   %0 = tid.x
//!   %1 = mul %0, %arg1
//!   %2 = gep i32 %arg0, %0
//!   store %1, %2
//!   ret
//! }
//! "#).unwrap();
//! assert_eq!(f.name(), "axpy");
//! assert!(f.verify_structure().is_ok());
//! ```

use crate::function::{BlockId, Function, InstData, InstId};
use crate::module::Module;
use crate::opcode::{Dim, FcmpPred, IcmpPred, Opcode};
use crate::types::{AddrSpace, Type};
use crate::value::Value;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse failure, with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_type(s: &str, line: usize) -> Result<Type, ParseError> {
    match s {
        "void" => Ok(Type::Void),
        "i1" => Ok(Type::I1),
        "i32" => Ok(Type::I32),
        "i64" => Ok(Type::I64),
        "f32" => Ok(Type::F32),
        "ptr(global)" => Ok(Type::Ptr(AddrSpace::Global)),
        "ptr(shared)" => Ok(Type::Ptr(AddrSpace::Shared)),
        _ => err(line, format!("unknown type `{s}`")),
    }
}

/// Parses a value token in the context of the growing function.
fn parse_value(
    tok: &str,
    names: &HashMap<String, InstId>,
    line: usize,
) -> Result<Value, ParseError> {
    let tok = tok.trim();
    if let Some(rest) = tok.strip_prefix("%arg") {
        return rest
            .parse::<u32>()
            .map(Value::Param)
            .map_err(|_| ParseError {
                line,
                message: format!("bad parameter `{tok}`"),
            });
    }
    if tok.starts_with('%') {
        return match names.get(tok) {
            Some(&id) => Ok(Value::Inst(id)),
            None => err(line, format!("undefined value `{tok}`")),
        };
    }
    if tok == "true" {
        return Ok(Value::I1(true));
    }
    if tok == "false" {
        return Ok(Value::I1(false));
    }
    if let Some(rest) = tok.strip_prefix("undef:") {
        return Ok(Value::Undef(parse_type(rest, line)?));
    }
    if let Some(rest) = tok.strip_suffix("i64") {
        if let Ok(x) = rest.parse::<i64>() {
            return Ok(Value::I64(x));
        }
    }
    if let Some(rest) = tok.strip_suffix('f') {
        if let Ok(x) = rest.parse::<f32>() {
            return Ok(Value::const_f32(x));
        }
    }
    if let Ok(x) = tok.parse::<i32>() {
        return Ok(Value::I32(x));
    }
    err(line, format!("cannot parse value `{tok}`"))
}

fn parse_icmp_pred(s: &str, line: usize) -> Result<IcmpPred, ParseError> {
    use IcmpPred::*;
    Ok(match s {
        "eq" => Eq,
        "ne" => Ne,
        "slt" => Slt,
        "sle" => Sle,
        "sgt" => Sgt,
        "sge" => Sge,
        "ult" => Ult,
        "ule" => Ule,
        "ugt" => Ugt,
        "uge" => Uge,
        _ => return err(line, format!("unknown icmp predicate `{s}`")),
    })
}

fn parse_fcmp_pred(s: &str, line: usize) -> Result<FcmpPred, ParseError> {
    use FcmpPred::*;
    Ok(match s {
        "oeq" => Oeq,
        "one" => One,
        "olt" => Olt,
        "ole" => Ole,
        "ogt" => Ogt,
        "oge" => Oge,
        _ => return err(line, format!("unknown fcmp predicate `{s}`")),
    })
}

fn parse_dim(s: &str, line: usize) -> Result<Dim, ParseError> {
    match s {
        "x" => Ok(Dim::X),
        "y" => Ok(Dim::Y),
        _ => err(line, format!("unknown dimension `{s}`")),
    }
}

/// Splits an operand list on top-level commas (commas inside `[...]` are
/// respected for φ incoming lists).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parses the textual form of a single function.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with("//"))
        .collect();
    let mut it = lines.iter().peekable();

    // Header: fn @name(params) -> ret {
    let &(hline, header) = it.next().ok_or(ParseError {
        line: 0,
        message: "empty input".into(),
    })?;
    let header = header.strip_prefix("fn @").ok_or_else(|| ParseError {
        line: hline,
        message: "expected `fn @name(...)`".into(),
    })?;
    let open = header.find('(').ok_or(ParseError {
        line: hline,
        message: "expected `(`".into(),
    })?;
    let close = header.rfind(')').ok_or(ParseError {
        line: hline,
        message: "expected `)`".into(),
    })?;
    let name = &header[..open];
    let params_src = &header[open + 1..close];
    let rest = header[close + 1..].trim();
    let ret_src = rest
        .strip_prefix("->")
        .and_then(|r| r.trim().strip_suffix('{'))
        .ok_or(ParseError {
            line: hline,
            message: "expected `-> TYPE {`".into(),
        })?;
    let ret = parse_type(ret_src.trim(), hline)?;
    let mut params = Vec::new();
    for (k, p) in params_src
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .enumerate()
    {
        let ty_src = p
            .trim()
            .rsplit_once(' ')
            .map(|(t, _)| t)
            .ok_or_else(|| ParseError {
                line: hline,
                message: format!("bad parameter {k}"),
            })?;
        params.push(parse_type(ty_src.trim(), hline)?);
    }
    let mut func = Function::new(name, params, ret);

    // First pass: shared decls and block labels (blocks must exist before
    // branches reference them). The auto-created entry block is renamed to
    // the first label.
    let mut blocks: HashMap<String, BlockId> = HashMap::new();
    let mut first_label = true;
    for &(line, l) in it.clone() {
        if l == "}" {
            continue;
        }
        if let Some(decl) = l.strip_prefix("shared ") {
            // shared NAME : [LEN x TYPE]
            let (name, rest) = decl.split_once(':').ok_or(ParseError {
                line,
                message: "bad shared declaration".into(),
            })?;
            let inner = rest
                .trim()
                .strip_prefix('[')
                .and_then(|r| r.strip_suffix(']'))
                .ok_or(ParseError {
                    line,
                    message: "bad shared declaration".into(),
                })?;
            let (len_src, ty_src) = inner.split_once(" x ").ok_or(ParseError {
                line,
                message: "bad shared declaration".into(),
            })?;
            let len: u64 = len_src.trim().parse().map_err(|_| ParseError {
                line,
                message: "bad shared length".into(),
            })?;
            func.add_shared_array(name.trim(), parse_type(ty_src.trim(), line)?, len);
        } else if let Some(label) = l.strip_suffix(':') {
            let id = if first_label {
                first_label = false;
                func.set_block_name(func.entry(), label);
                func.entry()
            } else {
                func.add_block(label)
            };
            if blocks.insert(label.to_string(), id).is_some() {
                return err(line, format!("duplicate block label `{label}`"));
            }
        }
    }

    // Second pass: instructions. Operands may forward-reference values, so
    // instructions are created with placeholder operands first and patched
    // at the end.
    let mut names: HashMap<String, InstId> = HashMap::new();
    #[allow(clippy::type_complexity)]
    let mut pending: Vec<(InstId, usize, Vec<String>, Vec<String>)> = Vec::new(); // (inst, line, operand tokens, phi block labels)
    let mut cur_block: Option<BlockId> = None;
    for &(line, l) in it {
        if l == "}" || l.starts_with("shared ") {
            continue;
        }
        if let Some(label) = l.strip_suffix(':') {
            cur_block = Some(blocks[label]);
            continue;
        }
        let block = match cur_block {
            Some(b) => b,
            None => return err(line, "instruction before any block label"),
        };
        // `%N = OP ...` or `OP ...`
        let (result, body) = match l.split_once('=') {
            Some((lhs, rhs)) if lhs.trim().starts_with('%') && !lhs.trim().contains(' ') => {
                (Some(lhs.trim().to_string()), rhs.trim())
            }
            _ => (None, l),
        };
        let (inst, op_tokens, phi_blocks) = parse_inst(&mut func, body, &blocks, line)?;
        let id = func.add_inst(block, inst);
        if let Some(r) = result {
            names.insert(r, id);
        }
        pending.push((id, line, op_tokens, phi_blocks));
    }

    // Patch operands.
    for (id, line, tokens, phi_labels) in pending {
        let mut ops = Vec::with_capacity(tokens.len());
        for t in &tokens {
            ops.push(parse_value(t, &names, line)?);
        }
        let inst = func.inst_mut(id);
        inst.operands = ops;
        if !phi_labels.is_empty() {
            inst.phi_blocks = phi_labels.iter().map(|l| blocks[l]).collect();
        }
    }
    Ok(func)
}

/// Parses one instruction body into an [`InstData`] skeleton plus the raw
/// operand tokens (patched later) and φ incoming block labels.
fn parse_inst(
    func: &mut Function,
    body: &str,
    blocks: &HashMap<String, BlockId>,
    line: usize,
) -> Result<(InstData, Vec<String>, Vec<String>), ParseError> {
    let (mnemonic, rest) = body.split_once(' ').unwrap_or((body, ""));
    let rest = rest.trim();
    let block_of = |label: &str| -> Result<BlockId, ParseError> {
        blocks.get(label.trim()).copied().ok_or_else(|| ParseError {
            line,
            message: format!("unknown block `{label}`"),
        })
    };

    // Terminators.
    match mnemonic {
        "jump" => {
            return Ok((
                InstData::terminator(Opcode::Jump, vec![], vec![block_of(rest)?]),
                vec![],
                vec![],
            ));
        }
        "br" => {
            let parts = split_operands(rest);
            if parts.len() != 3 {
                return err(line, "br expects `cond, then, else`");
            }
            return Ok((
                InstData::terminator(
                    Opcode::Br,
                    vec![],
                    vec![block_of(&parts[1])?, block_of(&parts[2])?],
                ),
                vec![parts[0].clone()],
                vec![],
            ));
        }
        "ret" => {
            let ops = if rest.is_empty() {
                vec![]
            } else {
                vec![rest.to_string()]
            };
            return Ok((
                InstData::terminator(Opcode::Ret, vec![], vec![]),
                ops,
                vec![],
            ));
        }
        _ => {}
    }

    // φ-nodes: `phi TYPE [v, blk], [v, blk], ...`
    if mnemonic == "phi" {
        let (ty_src, list) = rest.split_once(' ').ok_or(ParseError {
            line,
            message: "phi expects a type".into(),
        })?;
        let ty = parse_type(ty_src, line)?;
        let mut ops = Vec::new();
        let mut labels = Vec::new();
        for ent in split_operands(list) {
            let inner = ent
                .strip_prefix('[')
                .and_then(|e| e.strip_suffix(']'))
                .ok_or_else(|| ParseError {
                    line,
                    message: format!("bad phi entry `{ent}`"),
                })?;
            let (v, blk) = inner.split_once(',').ok_or_else(|| ParseError {
                line,
                message: format!("bad phi entry `{ent}`"),
            })?;
            ops.push(v.trim().to_string());
            labels.push(blk.trim().to_string());
        }
        let mut data = InstData::new(Opcode::Phi, ty, vec![]);
        data.phi_blocks = vec![]; // patched later
        return Ok((data, ops, labels));
    }

    // Typed unary/memory forms: `load TYPE ptr`, `zext TYPE v`, ...
    let typed =
        |op: Opcode, rest: &str| -> Result<(InstData, Vec<String>, Vec<String>), ParseError> {
            let (ty_src, v) = rest.split_once(' ').ok_or(ParseError {
                line,
                message: format!("{} expects a type", op.mnemonic()),
            })?;
            let ty = parse_type(ty_src, line)?;
            Ok((InstData::new(op, ty, vec![]), split_operands(v), vec![]))
        };
    match mnemonic {
        "load" => return typed(Opcode::Load, rest),
        "zext" => return typed(Opcode::Zext, rest),
        "sext" => return typed(Opcode::Sext, rest),
        "trunc" => return typed(Opcode::Trunc, rest),
        "fptosi" => return typed(Opcode::FpToSi, rest),
        "gep" => {
            let (ty_src, v) = rest.split_once(' ').ok_or(ParseError {
                line,
                message: "gep expects an element type".into(),
            })?;
            let elem = parse_type(ty_src, line)?;
            // result type = pointer operand type; patched after operand
            // resolution is not possible here, so default to global and fix
            // in a post-pass below via `fixup_gep_types`.
            return Ok((
                InstData::new(Opcode::Gep { elem }, Type::Ptr(AddrSpace::Global), vec![]),
                split_operands(v),
                vec![],
            ));
        }
        _ => {}
    }

    // Fixed-type opcodes and operand-typed binary ops.
    let (opcode, ty, nops): (Opcode, Option<Type>, usize) = match mnemonic {
        "add" => (Opcode::Add, None, 2),
        "sub" => (Opcode::Sub, None, 2),
        "mul" => (Opcode::Mul, None, 2),
        "sdiv" => (Opcode::SDiv, None, 2),
        "srem" => (Opcode::SRem, None, 2),
        "udiv" => (Opcode::UDiv, None, 2),
        "urem" => (Opcode::URem, None, 2),
        "and" => (Opcode::And, None, 2),
        "or" => (Opcode::Or, None, 2),
        "xor" => (Opcode::Xor, None, 2),
        "shl" => (Opcode::Shl, None, 2),
        "lshr" => (Opcode::LShr, None, 2),
        "ashr" => (Opcode::AShr, None, 2),
        "fadd" => (Opcode::FAdd, Some(Type::F32), 2),
        "fsub" => (Opcode::FSub, Some(Type::F32), 2),
        "fmul" => (Opcode::FMul, Some(Type::F32), 2),
        "fdiv" => (Opcode::FDiv, Some(Type::F32), 2),
        "fsqrt" => (Opcode::FSqrt, Some(Type::F32), 1),
        "fabs" => (Opcode::FAbs, Some(Type::F32), 1),
        "fneg" => (Opcode::FNeg, Some(Type::F32), 1),
        "fexp" => (Opcode::FExp, Some(Type::F32), 1),
        "sitofp" => (Opcode::SiToFp, Some(Type::F32), 1),
        "select" => (Opcode::Select, None, 3),
        "store" => (Opcode::Store, Some(Type::Void), 2),
        "icmp" => {
            let (p, v) = rest.split_once(' ').ok_or(ParseError {
                line,
                message: "icmp expects a predicate".into(),
            })?;
            let pred = parse_icmp_pred(p, line)?;
            return Ok((
                InstData::new(Opcode::Icmp(pred), Type::I1, vec![]),
                split_operands(v),
                vec![],
            ));
        }
        "fcmp" => {
            let (p, v) = rest.split_once(' ').ok_or(ParseError {
                line,
                message: "fcmp expects a predicate".into(),
            })?;
            let pred = parse_fcmp_pred(p, line)?;
            return Ok((
                InstData::new(Opcode::Fcmp(pred), Type::I1, vec![]),
                split_operands(v),
                vec![],
            ));
        }
        "ballot" => (Opcode::Ballot, Some(Type::I64), 1),
        "bar.sync" => (Opcode::Syncthreads, Some(Type::Void), 0),
        m if m.starts_with("tid.") => {
            let d = parse_dim(&m[4..], line)?;
            return Ok((
                InstData::new(Opcode::ThreadIdx(d), Type::I32, vec![]),
                vec![],
                vec![],
            ));
        }
        m if m.starts_with("ctaid.") => {
            let d = parse_dim(&m[6..], line)?;
            return Ok((
                InstData::new(Opcode::BlockIdx(d), Type::I32, vec![]),
                vec![],
                vec![],
            ));
        }
        m if m.starts_with("ntid.") => {
            let d = parse_dim(&m[5..], line)?;
            return Ok((
                InstData::new(Opcode::BlockDim(d), Type::I32, vec![]),
                vec![],
                vec![],
            ));
        }
        m if m.starts_with("nctaid.") => {
            let d = parse_dim(&m[7..], line)?;
            return Ok((
                InstData::new(Opcode::GridDim(d), Type::I32, vec![]),
                vec![],
                vec![],
            ));
        }
        "shared.base" => {
            let idx: u32 = rest.parse().map_err(|_| ParseError {
                line,
                message: "bad shared.base index".into(),
            })?;
            if idx as usize >= func.shared_arrays().len() {
                return err(line, format!("shared array {idx} not declared"));
            }
            return Ok((
                InstData::new(
                    Opcode::SharedBase(idx),
                    Type::Ptr(AddrSpace::Shared),
                    vec![],
                ),
                vec![],
                vec![],
            ));
        }
        other => return err(line, format!("unknown instruction `{other}`")),
    };
    let tokens = if rest.is_empty() {
        vec![]
    } else {
        split_operands(rest)
    };
    if tokens.len() != nops {
        return err(
            line,
            format!("{mnemonic} expects {nops} operands, got {}", tokens.len()),
        );
    }
    // Operand-typed ops get a placeholder; fixed later by `fixup_types`.
    Ok((
        InstData::new(opcode, ty.unwrap_or(Type::I32), vec![]),
        tokens,
        vec![],
    ))
}

/// Parses the textual form of a module: one or more `fn @name(...)` bodies
/// (see [`parse_function`] for the per-function syntax), in file order.
/// Line numbers in errors refer to the whole input.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, input containing no
/// function, or duplicate function names.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    // Chunk the input at `fn @` headers; each function body ends at the
    // first bare `}` line. Blank/comment lines between functions are
    // ignored, anything else outside a function is an error.
    let mut module = Module::new("module");
    let mut chunk: Option<(usize, Vec<&str>)> = None; // (0-based start line, lines)
    for (i, raw) in text.lines().enumerate() {
        let l = raw.trim();
        match &mut chunk {
            None => {
                if l.is_empty() || l.starts_with("//") {
                    continue;
                }
                if !l.starts_with("fn @") {
                    return err(i + 1, format!("expected `fn @name(...)`, found `{l}`"));
                }
                chunk = Some((i, vec![raw]));
            }
            Some((start, body)) => {
                body.push(raw);
                if l != "}" {
                    continue;
                }
                let (start, body) = (*start, body.join("\n"));
                chunk = None;
                let func = parse_function(&body).map_err(|mut e| {
                    e.line += start;
                    e
                })?;
                let fname = func.name().to_string();
                module.add_function(func).map_err(|_| ParseError {
                    line: start + 1,
                    message: format!("duplicate function `@{fname}`"),
                })?;
            }
        }
    }
    if let Some((start, _)) = chunk {
        return err(start + 1, "unterminated function (missing `}`)");
    }
    if module.is_empty() {
        return err(0, "empty input");
    }
    Ok(module)
}

/// [`parse_module`] followed by per-function type fixup
/// ([`fixup_types`]) and structural verification — the module analogue of
/// [`parse_and_verify`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed syntax; structural errors surface
/// with line 0 and the offending function's name.
pub fn parse_and_verify_module(text: &str) -> Result<Module, ParseError> {
    let mut module = parse_module(text)?;
    for func in module.functions_mut() {
        fixup_types(func);
        func.verify_structure().map_err(|e| ParseError {
            line: 0,
            message: format!("@{}: verification failed: {e}", func.name()),
        })?;
    }
    Ok(module)
}

/// Parses and then resolves operand-derived result types (binary ops,
/// `select`, `gep`) and verifies the result.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed syntax; type errors surface via
/// the structural verifier with line 0.
pub fn parse_and_verify(text: &str) -> Result<Function, ParseError> {
    let mut func = parse_function(text)?;
    fixup_types(&mut func);
    func.verify_structure().map_err(|e| ParseError {
        line: 0,
        message: format!("verification failed: {e}"),
    })?;
    Ok(func)
}

/// Re-derives operand-dependent result types after operand patching. Runs
/// to a fixpoint because types flow through chains of such instructions.
pub fn fixup_types(func: &mut Function) {
    loop {
        let mut changed = false;
        for b in func.block_ids() {
            for id in func.insts_of(b).to_vec() {
                let inst = func.inst(id);
                let new_ty = match inst.opcode {
                    Opcode::Add
                    | Opcode::Sub
                    | Opcode::Mul
                    | Opcode::SDiv
                    | Opcode::SRem
                    | Opcode::UDiv
                    | Opcode::URem
                    | Opcode::And
                    | Opcode::Or
                    | Opcode::Xor
                    | Opcode::Shl
                    | Opcode::LShr
                    | Opcode::AShr => Some(func.value_ty(inst.operands[0])),
                    Opcode::Select => Some(func.value_ty(inst.operands[1])),
                    Opcode::Gep { .. } => Some(func.value_ty(inst.operands[0])),
                    _ => None,
                };
                if let Some(ty) = new_ty {
                    if func.inst(id).ty != ty {
                        func.inst_mut(id).ty = ty;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn parses_simple_kernel() {
        let f = parse_and_verify(
            r#"
fn @k(ptr(global) %arg0, i32 %arg1) -> void {
entry:
  %0 = tid.x
  %1 = icmp slt %0, %arg1
  br %1, t, x
t:
  %2 = mul %0, 2
  %3 = gep i32 %arg0, %0
  store %2, %3
  jump x
x:
  ret
}
"#,
        )
        .unwrap();
        assert_eq!(f.name(), "k");
        assert_eq!(f.block_ids().len(), 3);
        assert_eq!(f.params().len(), 2);
    }

    #[test]
    fn parses_phis_and_loops() {
        let f = parse_and_verify(
            r#"
fn @sum(i32 %arg0) -> i32 {
entry:
  jump hdr
hdr:
  %0 = phi i32 [0, entry], [%3, body]
  %1 = phi i32 [0, entry], [%4, body]
  %2 = icmp slt %0, %arg0
  br %2, body, exit
body:
  %3 = add %0, 1
  %4 = add %1, %0
  jump hdr
exit:
  ret %1
}
"#,
        )
        .unwrap();
        assert_eq!(f.block_ids().len(), 4);
    }

    #[test]
    fn parses_shared_memory_and_floats() {
        let f = parse_and_verify(
            r#"
fn @s() -> void {
  shared tile : [64 x f32]
entry:
  %0 = shared.base 0
  %1 = tid.x
  %2 = gep f32 %0, %1
  %3 = load f32 %2
  %4 = fadd %3, 1.5f
  store %4, %2
  bar.sync
  ret
}
"#,
        )
        .unwrap();
        assert_eq!(f.shared_arrays()[0].len, 64);
    }

    #[test]
    fn round_trips_printer_output() {
        // Build a function with diverse constructs, print it, parse it, and
        // compare the reprints.
        let mut f = Function::new(
            "rt",
            vec![Type::Ptr(AddrSpace::Global), Type::I32],
            Type::I32,
        );
        let sh = f.add_shared_array("t", Type::I32, 32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let base = b.shared_base(sh);
        let sp = b.gep(Type::I32, base, tid);
        let v = b.load(Type::I32, sp);
        let c = b.icmp(IcmpPred::Slt, v, b.param(1));
        b.br(c, t, e);
        b.switch_to(t);
        let a = b.add(v, b.const_i32(1));
        let wide = b.sext(a, Type::I64);
        let back = b.trunc(wide, Type::I32);
        b.jump(x);
        b.switch_to(e);
        let m = b.select(c, v, b.const_i32(7));
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, back), (e, m)]);
        b.ret(Some(p));

        let printed = f.to_string();
        let reparsed = parse_and_verify(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e =
            parse_function("fn @x() -> void {\nentry:\n  %0 = bogus 1, 2\n  ret\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn undefined_value_is_an_error() {
        let e = parse_function("fn @x() -> void {\nentry:\n  store %9, %9\n  ret\n}").unwrap_err();
        assert!(e.message.contains("undefined value"));
    }

    #[test]
    fn unknown_block_is_an_error() {
        let e = parse_function("fn @x() -> void {\nentry:\n  jump nowhere\n}").unwrap_err();
        assert!(e.message.contains("unknown block"));
    }

    const TWO_FUNCS: &str = r#"
// a module of two kernels
fn @a(i32 %arg0) -> i32 {
entry:
  %0 = add %arg0, 1
  ret %0
}

fn @b() -> void {
entry:
  ret
}
"#;

    #[test]
    fn parses_modules_and_round_trips() {
        let m = parse_and_verify_module(TWO_FUNCS).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.functions()[0].name(), "a");
        assert_eq!(m.functions()[1].name(), "b");
        let printed = m.to_string();
        let reparsed = parse_and_verify_module(&printed).unwrap();
        assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn single_function_file_is_a_module_of_one() {
        let m = parse_module("fn @solo() -> void {\nentry:\n  ret\n}").unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.functions()[0].name(), "solo");
    }

    #[test]
    fn module_errors_carry_absolute_line_numbers() {
        // The bad instruction sits on line 8 of the whole file, inside the
        // second function.
        let text = "fn @a() -> void {\nentry:\n  ret\n}\n\nfn @b() -> void {\nentry:\n  %0 = bogus 1\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 8, "{e}");
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn module_rejects_duplicates_and_stray_text() {
        let dup = "fn @a() -> void {\nentry:\n  ret\n}\nfn @a() -> void {\nentry:\n  ret\n}\n";
        let e = parse_module(dup).unwrap_err();
        assert!(e.message.contains("duplicate function `@a`"), "{e}");
        let stray = "wat\nfn @a() -> void {\nentry:\n  ret\n}\n";
        let e = parse_module(stray).unwrap_err();
        assert_eq!(e.line, 1);
        let unterminated = "fn @a() -> void {\nentry:\n  ret\n";
        let e = parse_module(unterminated).unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
    }
}
