//! Ergonomic construction of IR functions.

use crate::function::{BlockId, Function, InstData, InstId};
use crate::opcode::{Dim, FcmpPred, IcmpPred, Opcode};
use crate::types::Type;
use crate::value::Value;

/// A cursor that appends instructions to a block of a [`Function`].
///
/// All emission methods return the produced [`Value`] so expressions compose:
///
/// ```
/// use darm_ir::{builder::FunctionBuilder, Function, Type, Dim};
/// let mut f = Function::new("twice_tid", vec![], Type::I32);
/// let entry = f.entry();
/// let mut b = FunctionBuilder::new(&mut f, entry);
/// let tid = b.thread_idx(Dim::X);
/// let v = b.add(tid, tid);
/// b.ret(Some(v));
/// assert!(f.verify_structure().is_ok());
/// ```
#[derive(Debug)]
pub struct FunctionBuilder<'f> {
    func: &'f mut Function,
    cur: BlockId,
}

impl<'f> FunctionBuilder<'f> {
    /// Creates a builder positioned at the end of `block`.
    pub fn new(func: &'f mut Function, block: BlockId) -> FunctionBuilder<'f> {
        FunctionBuilder { func, cur: block }
    }

    /// The function being built.
    pub fn func(&mut self) -> &mut Function {
        self.func
    }

    /// The block the builder currently appends to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Moves the cursor to the end of `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// Creates a new block (without moving the cursor).
    pub fn add_block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    /// Emits an instruction at the cursor.
    pub fn emit(&mut self, data: InstData) -> InstId {
        self.func.add_inst(self.cur, data)
    }

    fn value(&mut self, data: InstData) -> Value {
        Value::Inst(self.emit(data))
    }

    // ---- leaf values ----

    /// The n-th function parameter.
    pub fn param(&self, i: u32) -> Value {
        Value::Param(i)
    }

    /// An `i32` constant.
    pub fn const_i32(&self, x: i32) -> Value {
        Value::I32(x)
    }

    /// An `f32` constant.
    pub fn const_f32(&self, x: f32) -> Value {
        Value::const_f32(x)
    }

    // ---- intrinsics ----

    /// Thread index within the block.
    pub fn thread_idx(&mut self, d: Dim) -> Value {
        self.value(InstData::new(Opcode::ThreadIdx(d), Type::I32, vec![]))
    }

    /// Block index within the grid.
    pub fn block_idx(&mut self, d: Dim) -> Value {
        self.value(InstData::new(Opcode::BlockIdx(d), Type::I32, vec![]))
    }

    /// Threads per block.
    pub fn block_dim(&mut self, d: Dim) -> Value {
        self.value(InstData::new(Opcode::BlockDim(d), Type::I32, vec![]))
    }

    /// Blocks per grid.
    pub fn grid_dim(&mut self, d: Dim) -> Value {
        self.value(InstData::new(Opcode::GridDim(d), Type::I32, vec![]))
    }

    /// Base pointer of shared array `idx` (declared via
    /// [`Function::add_shared_array`]).
    pub fn shared_base(&mut self, idx: u32) -> Value {
        self.value(InstData::new(
            Opcode::SharedBase(idx),
            Type::Ptr(crate::types::AddrSpace::Shared),
            vec![],
        ))
    }

    /// Block-wide barrier.
    pub fn syncthreads(&mut self) {
        self.emit(InstData::new(Opcode::Syncthreads, Type::Void, vec![]));
    }

    /// Warp ballot over a predicate.
    pub fn ballot(&mut self, pred: Value) -> Value {
        self.value(InstData::new(Opcode::Ballot, Type::I64, vec![pred]))
    }

    // ---- arithmetic ----

    fn binop(&mut self, op: Opcode, a: Value, b: Value) -> Value {
        let ty = self.func.value_ty(a);
        self.value(InstData::new(op, ty, vec![a, b]))
    }

    /// Integer add.
    pub fn add(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::Add, a, b)
    }

    /// Integer subtract.
    pub fn sub(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::Sub, a, b)
    }

    /// Integer multiply.
    pub fn mul(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::Mul, a, b)
    }

    /// Signed divide.
    pub fn sdiv(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::SDiv, a, b)
    }

    /// Signed remainder.
    pub fn srem(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::SRem, a, b)
    }

    /// Unsigned divide.
    pub fn udiv(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::UDiv, a, b)
    }

    /// Unsigned remainder.
    pub fn urem(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::URem, a, b)
    }

    /// Bitwise and.
    pub fn and(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::And, a, b)
    }

    /// Bitwise or.
    pub fn or(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::Or, a, b)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::Xor, a, b)
    }

    /// Shift left.
    pub fn shl(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::Shl, a, b)
    }

    /// Logical shift right.
    pub fn lshr(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::LShr, a, b)
    }

    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::AShr, a, b)
    }

    /// Float add.
    pub fn fadd(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::FAdd, a, b)
    }

    /// Float subtract.
    pub fn fsub(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::FSub, a, b)
    }

    /// Float multiply.
    pub fn fmul(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::FMul, a, b)
    }

    /// Float divide.
    pub fn fdiv(&mut self, a: Value, b: Value) -> Value {
        self.binop(Opcode::FDiv, a, b)
    }

    /// Float square root.
    pub fn fsqrt(&mut self, a: Value) -> Value {
        self.value(InstData::new(Opcode::FSqrt, Type::F32, vec![a]))
    }

    /// Float absolute value.
    pub fn fabs(&mut self, a: Value) -> Value {
        self.value(InstData::new(Opcode::FAbs, Type::F32, vec![a]))
    }

    /// Float negation.
    pub fn fneg(&mut self, a: Value) -> Value {
        self.value(InstData::new(Opcode::FNeg, Type::F32, vec![a]))
    }

    /// Float exponential.
    pub fn fexp(&mut self, a: Value) -> Value {
        self.value(InstData::new(Opcode::FExp, Type::F32, vec![a]))
    }

    // ---- comparisons / select / casts ----

    /// Integer comparison producing `i1`.
    pub fn icmp(&mut self, pred: IcmpPred, a: Value, b: Value) -> Value {
        self.value(InstData::new(Opcode::Icmp(pred), Type::I1, vec![a, b]))
    }

    /// Float comparison producing `i1`.
    pub fn fcmp(&mut self, pred: FcmpPred, a: Value, b: Value) -> Value {
        self.value(InstData::new(Opcode::Fcmp(pred), Type::I1, vec![a, b]))
    }

    /// `select cond, a, b`.
    pub fn select(&mut self, cond: Value, a: Value, b: Value) -> Value {
        let ty = self.func.value_ty(a);
        self.value(InstData::new(Opcode::Select, ty, vec![cond, a, b]))
    }

    /// Zero-extends to `to`.
    pub fn zext(&mut self, v: Value, to: Type) -> Value {
        self.value(InstData::new(Opcode::Zext, to, vec![v]))
    }

    /// Sign-extends to `to`.
    pub fn sext(&mut self, v: Value, to: Type) -> Value {
        self.value(InstData::new(Opcode::Sext, to, vec![v]))
    }

    /// Truncates to `to`.
    pub fn trunc(&mut self, v: Value, to: Type) -> Value {
        self.value(InstData::new(Opcode::Trunc, to, vec![v]))
    }

    /// Signed int to float.
    pub fn sitofp(&mut self, v: Value) -> Value {
        self.value(InstData::new(Opcode::SiToFp, Type::F32, vec![v]))
    }

    /// Float to signed int.
    pub fn fptosi(&mut self, v: Value, to: Type) -> Value {
        self.value(InstData::new(Opcode::FpToSi, to, vec![v]))
    }

    // ---- memory ----

    /// Loads a `ty` value through `ptr`.
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        self.value(InstData::new(Opcode::Load, ty, vec![ptr]))
    }

    /// Stores `v` through `ptr`.
    pub fn store(&mut self, v: Value, ptr: Value) {
        self.emit(InstData::new(Opcode::Store, Type::Void, vec![v, ptr]));
    }

    /// `ptr + index * size_of(elem)`.
    pub fn gep(&mut self, elem: Type, ptr: Value, index: Value) -> Value {
        let ty = self.func.value_ty(ptr);
        self.value(InstData::new(Opcode::Gep { elem }, ty, vec![ptr, index]))
    }

    // ---- SSA / control flow ----

    /// Emits a φ-node from `(pred, value)` pairs.
    pub fn phi(&mut self, ty: Type, incoming: &[(BlockId, Value)]) -> Value {
        self.value(InstData::phi(ty, incoming))
    }

    /// Conditional branch.
    pub fn br(&mut self, cond: Value, then: BlockId, els: BlockId) {
        self.emit(InstData::terminator(
            Opcode::Br,
            vec![cond],
            vec![then, els],
        ));
    }

    /// Unconditional branch.
    pub fn jump(&mut self, target: BlockId) {
        self.emit(InstData::terminator(Opcode::Jump, vec![], vec![target]));
    }

    /// Return.
    pub fn ret(&mut self, v: Option<Value>) {
        self.emit(InstData::terminator(
            Opcode::Ret,
            v.into_iter().collect(),
            vec![],
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AddrSpace;

    #[test]
    fn builds_loop_with_phi() {
        // for (i = 0; i < n; i++) acc += i
        let mut f = Function::new("sum", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.jump(header);

        b.switch_to(header);
        // placeholders, patched below
        let i = b.phi(Type::I32, &[(entry, Value::I32(0))]);
        let acc = b.phi(Type::I32, &[(entry, Value::I32(0))]);
        let n = b.param(0);
        let cond = b.icmp(IcmpPred::Slt, i, n);
        b.br(cond, body, exit);

        b.switch_to(body);
        let acc2 = b.add(acc, i);
        let one = b.const_i32(1);
        let i2 = b.add(i, one);
        b.jump(header);

        b.switch_to(exit);
        b.ret(Some(acc));

        // patch the phis with the backedge values
        let phi_i = i.as_inst().unwrap();
        let phi_acc = acc.as_inst().unwrap();
        f.inst_mut(phi_i).operands.push(i2);
        f.inst_mut(phi_i).phi_blocks.push(body);
        f.inst_mut(phi_acc).operands.push(acc2);
        f.inst_mut(phi_acc).phi_blocks.push(body);

        f.verify_structure().unwrap();
        assert_eq!(f.succs(header).len(), 2);
    }

    #[test]
    fn builds_shared_memory_access() {
        let mut f = Function::new("smem", vec![], Type::Void);
        let idx = f.add_shared_array("tile", Type::I32, 64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f, entry);
        let base = b.shared_base(idx);
        let tid = b.thread_idx(Dim::X);
        let p = b.gep(Type::I32, base, tid);
        let v = b.load(Type::I32, p);
        let v2 = b.add(v, v);
        b.store(v2, p);
        b.syncthreads();
        b.ret(None);
        f.verify_structure().unwrap();
        assert_eq!(f.value_ty(base), Type::Ptr(AddrSpace::Shared));
    }

    #[test]
    fn float_pipeline_verifies() {
        let mut f = Function::new("fmath", vec![Type::F32], Type::F32);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f, entry);
        let x = b.param(0);
        let y = b.fmul(x, x);
        let z = b.fsqrt(y);
        let w = b.fadd(z, b.const_f32(1.0));
        let c = b.fcmp(FcmpPred::Olt, w, x);
        let r = b.select(c, w, x);
        b.ret(Some(r));
        f.verify_structure().unwrap();
    }
}
