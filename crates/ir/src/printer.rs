//! LLVM-like textual rendering of functions, for debugging and golden tests.

use crate::function::Function;
use crate::opcode::Opcode;
use crate::types::Type;
use std::fmt;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn @{}(", self.name())?;
        for (i, ty) in self.params().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ty} %arg{i}")?;
        }
        writeln!(f, ") -> {} {{", self.ret_ty())?;
        for arr in self.shared_arrays() {
            writeln!(f, "  shared {} : [{} x {}]", arr.name, arr.len, arr.elem)?;
        }
        for b in self.block_ids() {
            writeln!(f, "{}:", self.block_name(b))?;
            for &id in self.insts_of(b) {
                let inst = self.inst(id);
                write!(f, "  ")?;
                if inst.ty != Type::Void {
                    write!(f, "%{} = ", id.index())?;
                }
                write!(f, "{}", inst.opcode.mnemonic())?;
                // Opcodes whose result type is not derivable from operands
                // carry an explicit type annotation (keeps text parseable).
                if matches!(
                    inst.opcode,
                    Opcode::Load
                        | Opcode::Zext
                        | Opcode::Sext
                        | Opcode::Trunc
                        | Opcode::FpToSi
                        | Opcode::Phi
                ) {
                    write!(f, " {}", inst.ty)?;
                }
                if inst.opcode == Opcode::Phi {
                    for (k, (blk, val)) in inst.phi_incoming().enumerate() {
                        let sep = if k == 0 { " " } else { ", " };
                        write!(f, "{sep}[{val}, {}]", self.block_name(blk))?;
                    }
                } else {
                    for (k, op) in inst.operands.iter().enumerate() {
                        let sep = if k == 0 { " " } else { ", " };
                        write!(f, "{sep}{op}")?;
                    }
                    for (k, s) in inst.succs.iter().enumerate() {
                        let sep = if k == 0 && inst.operands.is_empty() {
                            " "
                        } else {
                            ", "
                        };
                        write!(f, "{sep}{}", self.block_name(*s))?;
                    }
                }
                writeln!(f)?;
            }
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::function::Function;
    use crate::opcode::IcmpPred;
    use crate::types::Type;

    #[test]
    fn prints_branches_and_phis() {
        let mut f = Function::new("p", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let one = b.const_i32(1);
        let a = b.add(b.param(0), one);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, a), (e, Value::I32(0))]);
        b.ret(Some(p));
        use crate::value::Value;
        let text = f.to_string();
        assert!(text.contains("fn @p(i32 %arg0) -> i32 {"), "{text}");
        assert!(text.contains("icmp slt %arg0, 0"), "{text}");
        assert!(text.contains("br %0, t, e"), "{text}");
        assert!(text.contains("phi i32 [%2, t], [0, e]"), "{text}");
    }

    #[test]
    fn prints_shared_decls() {
        let mut f = Function::new("s", vec![], Type::Void);
        f.add_shared_array("tile", Type::F32, 128);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        b.ret(None);
        assert!(f.to_string().contains("shared tile : [128 x f32]"));
    }
}
