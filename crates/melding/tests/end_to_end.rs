//! End-to-end melding tests: every melded kernel must (a) pass the SSA
//! verifier, (b) produce bit-identical outputs on the SIMT simulator, and
//! (c) actually reduce divergence cost where the paper says it should.

use darm_analysis::verify_ssa;
use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type};
use darm_melding::{meld_function, tail_merge, MeldConfig, MeldStats};
use darm_simt::{Gpu, GpuConfig, KernelArg, KernelStats, LaunchConfig};

/// Runs `func` on fresh buffers and returns (outputs, stats).
fn run(func: &Function, n: usize, extra: &[KernelArg]) -> (Vec<i32>, KernelStats) {
    let mut gpu = Gpu::new(GpuConfig::default());
    let buf = gpu.alloc_i32(&vec![0; n]);
    let mut args = vec![KernelArg::Buffer(buf)];
    args.extend_from_slice(extra);
    let stats = gpu
        .launch(func, &LaunchConfig::linear(1, n as u32), &args)
        .unwrap_or_else(|e| panic!("simulation of {} failed: {e}", func.name()));
    (gpu.read_i32(buf), stats)
}

/// Runs `func` with a data input buffer as second argument.
fn run_io(func: &Function, input: &[i32], n_out: usize) -> (Vec<i32>, KernelStats) {
    let mut gpu = Gpu::new(GpuConfig::default());
    let out = gpu.alloc_i32(&vec![0; n_out]);
    let inp = gpu.alloc_i32(input);
    let stats = gpu
        .launch(
            func,
            &LaunchConfig::linear(1, n_out as u32),
            &[KernelArg::Buffer(out), KernelArg::Buffer(inp)],
        )
        .unwrap_or_else(|e| panic!("simulation of {} failed: {e}", func.name()));
    (gpu.read_i32(out), stats)
}

/// Melds a copy and checks verifier + output equivalence; returns
/// (baseline stats, melded stats, meld stats).
fn check_meld(
    func: &Function,
    config: &MeldConfig,
    runner: impl Fn(&Function) -> (Vec<i32>, KernelStats),
) -> (KernelStats, KernelStats, MeldStats) {
    verify_ssa(func).expect("baseline must verify");
    let (base_out, base_stats) = runner(func);
    let mut melded = func.clone();
    let mstats = meld_function(&mut melded, config);
    verify_ssa(&melded)
        .unwrap_or_else(|e| panic!("melded {} fails verification: {e}\n{melded}", func.name()));
    let (meld_out, meld_stats) = runner(&melded);
    assert_eq!(
        base_out,
        meld_out,
        "melding changed semantics of {}\n{melded}",
        func.name()
    );
    (base_stats, meld_stats, mstats)
}

/// Diamond with distinct-but-compatible computations — the branch-fusion
/// case (Table I row 2).
fn diamond_kernel() -> Function {
    let mut f = Function::new("diamond", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let t = f.add_block("t");
    let e = f.add_block("e");
    let x = f.add_block("x");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let one = b.const_i32(1);
    let parity = b.and(tid, one);
    let c = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
    b.br(c, t, e);
    b.switch_to(t);
    let v1 = b.mul(tid, b.const_i32(3));
    let w1 = b.add(v1, b.const_i32(10));
    let p1 = b.gep(Type::I32, b.param(0), tid);
    b.store(w1, p1);
    b.jump(x);
    b.switch_to(e);
    let v2 = b.mul(tid, b.const_i32(5));
    let w2 = b.add(v2, b.const_i32(77));
    let p2 = b.gep(Type::I32, b.param(0), tid);
    b.store(w2, p2);
    b.jump(x);
    b.switch_to(x);
    b.ret(None);
    f
}

/// Bitonic-sort shaped kernel (Fig. 1/4): divergent branch whose sides are
/// if-then regions over shared memory — requires region-region melding.
fn bitonic_step_kernel() -> Function {
    let mut f = Function::new(
        "bitonic_step",
        vec![Type::Ptr(AddrSpace::Global), Type::Ptr(AddrSpace::Global)],
        Type::Void,
    );
    let sh = f.add_shared_array("tile", Type::I32, 64);
    let b_blk = f.entry();
    let c_blk = f.add_block("C");
    let e_blk = f.add_block("E");
    let x1 = f.add_block("X1");
    let d_blk = f.add_block("D");
    let f_blk = f.add_block("F");
    let x2 = f.add_block("X2");
    let g_blk = f.add_block("G");
    let mut b = FunctionBuilder::new(&mut f, b_blk);
    let tid = b.thread_idx(Dim::X);
    // load tile[tid] = in[tid]
    let gin = b.gep(Type::I32, b.param(1), tid);
    let v = b.load(Type::I32, gin);
    let base = b.shared_base(sh);
    let sp = b.gep(Type::I32, base, tid);
    b.store(v, sp);
    b.syncthreads();
    // partner = tid ^ 1
    let one = b.const_i32(1);
    let ixj = b.xor(tid, one);
    let pp = b.gep(Type::I32, base, ixj);
    // if ((tid & 2) == 0)  { if (tile[ixj] < tile[tid]) swap }
    // else                 { if (tile[ixj] > tile[tid]) swap }
    let k = b.and(tid, b.const_i32(2));
    let c0 = b.icmp(IcmpPred::Eq, k, b.const_i32(0));
    b.br(c0, c_blk, d_blk);

    b.switch_to(c_blk);
    let a1 = b.load(Type::I32, pp);
    let b1 = b.load(Type::I32, sp);
    let cc = b.icmp(IcmpPred::Slt, a1, b1);
    b.br(cc, e_blk, x1);
    b.switch_to(e_blk);
    b.store(b1, pp);
    b.store(a1, sp);
    b.jump(x1);
    b.switch_to(x1);
    b.jump(g_blk);

    b.switch_to(d_blk);
    let a2 = b.load(Type::I32, pp);
    let b2 = b.load(Type::I32, sp);
    let cd = b.icmp(IcmpPred::Sgt, a2, b2);
    b.br(cd, f_blk, x2);
    b.switch_to(f_blk);
    b.store(b2, pp);
    b.store(a2, sp);
    b.jump(x2);
    b.switch_to(x2);
    b.jump(g_blk);

    b.switch_to(g_blk);
    b.syncthreads();
    let out_v = b.load(Type::I32, sp);
    let gout = b.gep(Type::I32, b.param(0), tid);
    b.store(out_v, gout);
    b.ret(None);
    f
}

/// Single block vs if-then region — requires region replication.
fn bb_region_kernel() -> Function {
    let mut f = Function::new("bbr", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let a_blk = f.add_block("A");
    let r1 = f.add_block("R1");
    let rt = f.add_block("RT");
    let rx = f.add_block("RX");
    let g = f.add_block("G");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let one = b.const_i32(1);
    let parity = b.and(tid, one);
    let c0 = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
    b.br(c0, a_blk, r1);
    // true path: out[tid] = tid*7+1
    b.switch_to(a_blk);
    let x1 = b.mul(tid, b.const_i32(7));
    let y1 = b.add(x1, b.const_i32(1));
    let p1 = b.gep(Type::I32, b.param(0), tid);
    b.store(y1, p1);
    b.jump(g);
    // false path: if (tid < 16) { out[tid] = tid*7+2 } (else leave 0)
    b.switch_to(r1);
    let c1 = b.icmp(IcmpPred::Slt, tid, b.const_i32(16));
    b.br(c1, rt, rx);
    b.switch_to(rt);
    let x2 = b.mul(tid, b.const_i32(7));
    let y2 = b.add(x2, b.const_i32(2));
    let p2 = b.gep(Type::I32, b.param(0), tid);
    b.store(y2, p2);
    b.jump(rx);
    b.switch_to(rx);
    b.jump(g);
    b.switch_to(g);
    b.ret(None);
    f
}

/// Chains of different lengths: true path has two subgraphs, false has one
/// — alignment must introduce a guarded gap.
fn gap_kernel() -> Function {
    let mut f = Function::new("gap", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let t1 = f.add_block("T1");
    let t2 = f.add_block("T2");
    let f1 = f.add_block("F1");
    let x = f.add_block("x");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let one = b.const_i32(1);
    let parity = b.and(tid, one);
    let c = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
    b.br(c, t1, f1);
    b.switch_to(t1);
    let v1 = b.mul(tid, b.const_i32(3)); // melds with F1's mul
    let p1 = b.gep(Type::I32, b.param(0), tid);
    b.store(v1, p1);
    b.jump(t2);
    b.switch_to(t2); // extra true-side work: out[tid] += 100
    let r1 = b.load(Type::I32, p1);
    let r2 = b.add(r1, b.const_i32(100));
    b.store(r2, p1);
    b.jump(x);
    b.switch_to(f1);
    let v2 = b.mul(tid, b.const_i32(9));
    let p2 = b.gep(Type::I32, b.param(0), tid);
    b.store(v2, p2);
    b.jump(x);
    b.switch_to(x);
    b.ret(None);
    f
}

#[test]
fn diamond_melds_and_preserves_semantics() {
    let f = diamond_kernel();
    let (base, meld, stats) = check_meld(&f, &MeldConfig::default(), |f| run(f, 64, &[]));
    assert_eq!(stats.melded_subgraphs, 1);
    assert!(
        meld.cycles < base.cycles,
        "melding must reduce cycles: {meld:?} vs {base:?}"
    );
    assert!(meld.alu_utilization() > base.alu_utilization());
}

#[test]
fn diamond_branch_fusion_equals_darm() {
    let f = diamond_kernel();
    let (_, meld_bf, stats_bf) = check_meld(&f, &MeldConfig::branch_fusion(), |f| run(f, 64, &[]));
    assert_eq!(stats_bf.melded_subgraphs, 1);
    let (_, meld_darm, _) = check_meld(&f, &MeldConfig::default(), |f| run(f, 64, &[]));
    assert_eq!(meld_bf.cycles, meld_darm.cycles);
}

#[test]
fn bitonic_region_melds_under_darm_not_bf() {
    let f = bitonic_step_kernel();
    let input: Vec<i32> = (0..64).map(|i| (i * 37) % 101 - 50).collect();
    let (base, meld, stats) = check_meld(&f, &MeldConfig::default(), |f| run_io(f, &input, 64));
    assert!(
        stats.melded_subgraphs >= 1,
        "DARM must meld the region: {stats:?}"
    );
    assert!(
        meld.shared_mem_insts < base.shared_mem_insts,
        "melding must reduce issued LDS instructions ({} vs {})",
        meld.shared_mem_insts,
        base.shared_mem_insts
    );
    assert!(meld.cycles < base.cycles);

    // Branch fusion cannot handle the multi-block sides (Table I row 3).
    let mut bf = f.clone();
    let bf_stats = meld_function(&mut bf, &MeldConfig::branch_fusion());
    assert_eq!(
        bf_stats.melded_subgraphs, 0,
        "BF must not meld complex control flow"
    );
}

#[test]
fn bb_region_replication_melds() {
    let f = bb_region_kernel();
    let (base, meld, stats) = check_meld(&f, &MeldConfig::default(), |f| run(f, 64, &[]));
    assert!(
        stats.replications >= 1,
        "expected region replication: {stats:?}"
    );
    assert!(stats.melded_subgraphs >= 1);
    assert!(
        meld.cycles < base.cycles,
        "{} !< {}",
        meld.cycles,
        base.cycles
    );
}

#[test]
fn unmatched_subgraphs_stay_guarded() {
    let f = gap_kernel();
    let (_base, _meld, stats) = check_meld(&f, &MeldConfig::default(), |f| run(f, 64, &[]));
    assert!(stats.melded_subgraphs >= 1, "{stats:?}");
}

#[test]
fn unpredication_off_predicates_stores() {
    let f = diamond_kernel();
    let cfg = MeldConfig {
        unpredicate: false,
        ..MeldConfig::default()
    };
    let (_, _, stats) = check_meld(&f, &cfg, |f| run(f, 64, &[]));
    assert_eq!(stats.melded_subgraphs, 1);
    assert_eq!(stats.unpredicated_groups, 0);
}

#[test]
fn barrier_in_path_prevents_melding() {
    // Build the diamond but with a barrier in one arm: melding must refuse.
    let mut f = Function::new("bar", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let t = f.add_block("t");
    let e = f.add_block("e");
    let x = f.add_block("x");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(16));
    b.br(c, t, e);
    b.switch_to(t);
    let v1 = b.mul(tid, b.const_i32(3));
    let p1 = b.gep(Type::I32, b.param(0), tid);
    b.store(v1, p1);
    b.ballot(darm_ir::Value::I1(true)); // warp intrinsic: do not meld
    b.jump(x);
    b.switch_to(e);
    let v2 = b.mul(tid, b.const_i32(5));
    let p2 = b.gep(Type::I32, b.param(0), tid);
    b.store(v2, p2);
    b.jump(x);
    b.switch_to(x);
    b.ret(None);

    let mut melded = f.clone();
    let stats = meld_function(&mut melded, &MeldConfig::default());
    assert_eq!(stats.melded_subgraphs, 0);
}

#[test]
fn high_threshold_blocks_melding() {
    let f = diamond_kernel();
    let mut melded = f.clone();
    let stats = meld_function(&mut melded, &MeldConfig::with_threshold(0.95));
    assert_eq!(stats.melded_subgraphs, 0);
    // And a permissive threshold melds.
    let mut melded2 = f.clone();
    let stats2 = meld_function(&mut melded2, &MeldConfig::with_threshold(0.05));
    assert_eq!(stats2.melded_subgraphs, 1);
}

#[test]
fn three_way_divergence_melds_iteratively() {
    // if (tid%3==0) A else if (tid%3==1) B else C — SB4's shape.
    let mut f = Function::new("three", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let a_blk = f.add_block("A");
    let sel2 = f.add_block("sel2");
    let b_blk = f.add_block("B");
    let c_blk = f.add_block("C");
    let j2 = f.add_block("j2");
    let x = f.add_block("x");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let three = b.const_i32(3);
    let m = b.srem(tid, three);
    let c0 = b.icmp(IcmpPred::Eq, m, b.const_i32(0));
    b.br(c0, a_blk, sel2);
    b.switch_to(a_blk);
    let v0 = b.mul(tid, b.const_i32(11));
    let p0 = b.gep(Type::I32, b.param(0), tid);
    b.store(v0, p0);
    b.jump(x);
    b.switch_to(sel2);
    let c1 = b.icmp(IcmpPred::Eq, m, b.const_i32(1));
    b.br(c1, b_blk, c_blk);
    b.switch_to(b_blk);
    let v1 = b.mul(tid, b.const_i32(13));
    let p1 = b.gep(Type::I32, b.param(0), tid);
    b.store(v1, p1);
    b.jump(j2);
    b.switch_to(c_blk);
    let v2 = b.mul(tid, b.const_i32(17));
    let p2 = b.gep(Type::I32, b.param(0), tid);
    b.store(v2, p2);
    b.jump(j2);
    b.switch_to(j2);
    b.jump(x);
    b.switch_to(x);
    b.ret(None);

    let (base, meld, stats) = check_meld(&f, &MeldConfig::default(), |f| run(f, 66, &[]));
    assert!(stats.melded_subgraphs >= 1, "{stats:?}");
    assert!(meld.cycles < base.cycles);
}

#[test]
fn meld_inside_loop_preserves_semantics() {
    // for (i = 0; i < 8; i++) { if (tid&1) out[tid]+=i*3 else out[tid]+=i*5 }
    let mut f = Function::new("loopmeld", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let header = f.add_block("header");
    let t = f.add_block("t");
    let e = f.add_block("e");
    let latch = f.add_block("latch");
    let exit = f.add_block("exit");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let p = b.gep(Type::I32, b.param(0), tid);
    b.jump(header);
    b.switch_to(header);
    let i = b.phi(Type::I32, &[(entry, darm_ir::Value::I32(0))]);
    let one = b.const_i32(1);
    let parity = b.and(tid, one);
    let c0 = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
    b.br(c0, t, e);
    b.switch_to(t);
    let a1 = b.mul(i, b.const_i32(3));
    let o1 = b.load(Type::I32, p);
    let s1 = b.add(o1, a1);
    b.store(s1, p);
    b.jump(latch);
    b.switch_to(e);
    let a2 = b.mul(i, b.const_i32(5));
    let o2 = b.load(Type::I32, p);
    let s2 = b.add(o2, a2);
    b.store(s2, p);
    b.jump(latch);
    b.switch_to(latch);
    let inext = b.add(i, b.const_i32(1));
    let c1 = b.icmp(IcmpPred::Slt, inext, b.const_i32(8));
    b.br(c1, header, exit);
    b.switch_to(exit);
    b.ret(None);
    let pi = i.as_inst().unwrap();
    f.inst_mut(pi).operands.push(inext);
    f.inst_mut(pi).phi_blocks.push(latch);

    let (base, meld, stats) = check_meld(&f, &MeldConfig::default(), |f| run(f, 64, &[]));
    assert!(stats.melded_subgraphs >= 1, "{stats:?}");
    assert!(meld.cycles < base.cycles);
}

#[test]
fn melding_reduces_dynamic_divergence() {
    // Statically the branch count can stay flat (unpredication introduces
    // guard branches — the effect the paper's Fig. 4e discusses), but the
    // dynamic picture must improve: fewer warp instructions issued and
    // higher SIMD efficiency.
    let f = bitonic_step_kernel();
    let mut melded = f.clone();
    meld_function(&mut melded, &MeldConfig::default());
    assert!(melded.cond_branch_count() <= f.cond_branch_count());

    let input: Vec<i32> = (0..64).map(|i| (i * 37) % 101 - 50).collect();
    let (_, base) = run_io(&f, &input, 64);
    let (_, meld) = run_io(&melded, &input, 64);
    assert!(meld.warp_instructions < base.warp_instructions);
    assert!(meld.simd_efficiency() > base.simd_efficiency());
}

#[test]
fn tail_merge_handles_only_identical_diamond() {
    // Identical arms: tail merge works. Distinct arms: it does not, DARM does.
    let mut distinct = diamond_kernel();
    assert_eq!(tail_merge(&mut distinct), 0);
    let stats = meld_function(&mut distinct, &MeldConfig::default());
    assert_eq!(stats.melded_subgraphs, 1);
}

#[test]
fn meld_is_idempotent_at_fixpoint() {
    let f = diamond_kernel();
    let mut melded = f.clone();
    meld_function(&mut melded, &MeldConfig::default());
    let snapshot = melded.to_string();
    let stats2 = meld_function(&mut melded, &MeldConfig::default());
    assert_eq!(stats2.melded_subgraphs, 0);
    assert_eq!(melded.to_string(), snapshot);
}

#[test]
fn replication_never_targets_loop_regions() {
    // True side: single block with an expensive global load (high melding
    // profitability against the loop body). False side: a loop region.
    // Replicating into the loop would concretize its exit branch and spin
    // forever; the pass must refuse and stay correct.
    let mut f = Function::new("reploop", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let a_blk = f.add_block("A");
    let hdr = f.add_block("hdr");
    let body = f.add_block("body");
    let x = f.add_block("x");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let one = b.const_i32(1);
    let parity = b.and(tid, one);
    let c = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
    b.br(c, a_blk, hdr);
    // true: out[tid] += 1 (load+add+store, like the loop body)
    b.switch_to(a_blk);
    let p = b.gep(Type::I32, b.param(0), tid);
    let v = b.load(Type::I32, p);
    let v2 = b.add(v, b.const_i32(1));
    b.store(v2, p);
    b.jump(x);
    // false: for i in 0..3 { out[tid] += 1 }
    b.switch_to(hdr);
    let i = b.phi(Type::I32, &[(entry, darm_ir::Value::I32(0))]);
    let hc = b.icmp(IcmpPred::Slt, i, b.const_i32(3));
    b.br(hc, body, x);
    b.switch_to(body);
    let p2 = b.gep(Type::I32, b.param(0), tid);
    let w = b.load(Type::I32, p2);
    let w2 = b.add(w, b.const_i32(1));
    b.store(w2, p2);
    let i2 = b.add(i, b.const_i32(1));
    b.jump(hdr);
    b.switch_to(x);
    b.ret(None);
    let pi = i.as_inst().unwrap();
    f.inst_mut(pi).operands.push(i2);
    f.inst_mut(pi).phi_blocks.push(body);

    let (_, _, stats) = check_meld(&f, &MeldConfig::default(), |f| run(f, 64, &[]));
    assert_eq!(stats.replications, 0, "must not replicate into a loop");
}

#[test]
fn two_independent_regions_both_meld() {
    // Two back-to-back divergent diamonds: the fixpoint driver must meld
    // both.
    let mut f = Function::new("two", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let t1 = f.add_block("t1");
    let e1 = f.add_block("e1");
    let m = f.add_block("m");
    let t2 = f.add_block("t2");
    let e2 = f.add_block("e2");
    let x = f.add_block("x");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let p = b.gep(Type::I32, b.param(0), tid);
    let one = b.const_i32(1);
    let parity = b.and(tid, one);
    let c1 = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
    b.br(c1, t1, e1);
    b.switch_to(t1);
    let v1 = b.mul(tid, b.const_i32(3));
    b.store(v1, p);
    b.jump(m);
    b.switch_to(e1);
    let v2 = b.mul(tid, b.const_i32(5));
    b.store(v2, p);
    b.jump(m);
    b.switch_to(m);
    let two = b.const_i32(2);
    let parity2 = b.and(tid, two);
    let c2 = b.icmp(IcmpPred::Eq, parity2, b.const_i32(0));
    b.br(c2, t2, e2);
    b.switch_to(t2);
    let w1 = b.load(Type::I32, p);
    let w1b = b.add(w1, b.const_i32(10));
    b.store(w1b, p);
    b.jump(x);
    b.switch_to(e2);
    let w2 = b.load(Type::I32, p);
    let w2b = b.add(w2, b.const_i32(20));
    b.store(w2b, p);
    b.jump(x);
    b.switch_to(x);
    b.ret(None);

    let (base, meld, stats) = check_meld(&f, &MeldConfig::default(), |f| run(f, 64, &[]));
    assert_eq!(stats.melded_regions, 2, "{stats:?}");
    assert!(meld.cycles < base.cycles);
}

#[test]
fn y_dimension_divergence_melds() {
    // Divergence driven by tid.y in a 2-D block.
    let mut f = Function::new("ydiv", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let t = f.add_block("t");
    let e = f.add_block("e");
    let x = f.add_block("x");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tx = b.thread_idx(Dim::X);
    let ty = b.thread_idx(Dim::Y);
    let ntx = b.block_dim(Dim::X);
    let row = b.mul(ty, ntx);
    let lid = b.add(row, tx);
    let p = b.gep(Type::I32, b.param(0), lid);
    let one = b.const_i32(1);
    let parity = b.and(ty, one);
    let c = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
    b.br(c, t, e);
    b.switch_to(t);
    let v1 = b.mul(lid, b.const_i32(7));
    b.store(v1, p);
    b.jump(x);
    b.switch_to(e);
    let v2 = b.mul(lid, b.const_i32(9));
    b.store(v2, p);
    b.jump(x);
    b.switch_to(x);
    b.ret(None);

    verify_ssa(&f).unwrap();
    let mut gpu = Gpu::new(GpuConfig::default());
    let buf = gpu.alloc_i32(&[0; 64]);
    let base = gpu
        .launch(
            &f,
            &LaunchConfig::grid2d((1, 1), (8, 8)),
            &[darm_simt::KernelArg::Buffer(buf)],
        )
        .unwrap();
    let base_out = gpu.read_i32(buf);

    let mut melded = f.clone();
    let stats = meld_function(&mut melded, &MeldConfig::default());
    assert_eq!(stats.melded_subgraphs, 1);
    verify_ssa(&melded).unwrap();
    let buf2 = gpu.alloc_i32(&[0; 64]);
    let after = gpu
        .launch(
            &melded,
            &LaunchConfig::grid2d((1, 1), (8, 8)),
            &[darm_simt::KernelArg::Buffer(buf2)],
        )
        .unwrap();
    assert_eq!(gpu.read_i32(buf2), base_out);
    // With an 8-wide x dimension, consecutive warps mix y parities: the
    // branch diverges inside each 32-lane warp and melding pays off.
    assert!(after.cycles < base.cycles);
}

#[test]
fn meld_stats_report_iterations_and_repairs() {
    let f = gap_kernel();
    let mut melded = f.clone();
    let stats = meld_function(&mut melded, &MeldConfig::default());
    assert!(stats.iterations >= 1);
    // The gap kernel forces values across guard boundaries: SSA repair or
    // unpredication φs must have fired at least once overall.
    assert!(stats.melded_subgraphs >= 1);
}
