//! Structural isomorphism of SESE subgraphs (Definition 6, case 1) and
//! pre-order linearization (Algorithm 2's `Linearize`).

use crate::region::Subgraph;
use darm_ir::{BlockId, Function};
use std::collections::HashMap;

/// Attempts to match two SESE subgraphs block-for-block by walking both in
/// lockstep from their entries. Two subgraphs are isomorphic when their
/// terminators agree in kind and successor positions pair up consistently
/// (exit edges align with exit edges).
///
/// Returns the correspondence in DFS pre-order — the block-pair order
/// Algorithm 2 melds in (dominating definitions first) — or `None` if the
/// subgraphs are not structurally similar.
pub fn isomorphic_pairs(
    func: &Function,
    st: &Subgraph,
    sf: &Subgraph,
) -> Option<Vec<(BlockId, BlockId)>> {
    if st.blocks.len() != sf.blocks.len() {
        return None;
    }
    let mut map_t: HashMap<BlockId, BlockId> = HashMap::new();
    let mut map_f: HashMap<BlockId, BlockId> = HashMap::new();
    let mut order = Vec::new();
    let mut stack = vec![(st.entry, sf.entry)];
    while let Some((a, b)) = stack.pop() {
        match (map_t.get(&a), map_f.get(&b)) {
            (Some(&mb), Some(&ma)) if mb == b && ma == a => continue, // already matched
            (None, None) => {}
            _ => return None, // inconsistent mapping
        }
        map_t.insert(a, b);
        map_f.insert(b, a);
        order.push((a, b));
        let ta = func.terminator(a)?;
        let tb = func.terminator(b)?;
        let ia = func.inst(ta);
        let ib = func.inst(tb);
        if ia.opcode != ib.opcode || ia.succs.len() != ib.succs.len() {
            return None;
        }
        // Pair successors positionally; push in reverse so DFS visits the
        // first successor first.
        for k in (0..ia.succs.len()).rev() {
            let (sa, sb) = (ia.succs[k], ib.succs[k]);
            let a_exits = sa == st.exit_target;
            let b_exits = sb == sf.exit_target;
            match (a_exits, b_exits) {
                (true, true) => continue,
                (false, false) => {
                    if !st.contains(sa) || !sf.contains(sb) {
                        return None;
                    }
                    stack.push((sa, sb));
                }
                _ => return None,
            }
        }
    }
    if order.len() != st.blocks.len() {
        return None; // some blocks unreachable in lockstep (shouldn't happen)
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{detect_region, Analyses};
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    /// Divergent branch with an if-then region on each side (isomorphic) and
    /// a diamond-vs-if-then pair (not isomorphic) depending on `mirror`.
    fn two_sided(mirror: bool) -> (Function, Vec<BlockId>) {
        let mut f = Function::new("iso", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let c_blk = f.add_block("C");
        let e_blk = f.add_block("E");
        let x1 = f.add_block("X1");
        let d_blk = f.add_block("D");
        let f_blk = f.add_block("F");
        let f2_blk = f.add_block("F2");
        let x2 = f.add_block("X2");
        let g = f.add_block("G");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c0 = b.icmp(IcmpPred::Slt, tid, b.param(0));
        b.br(c0, c_blk, d_blk);

        b.switch_to(c_blk);
        let c1 = b.icmp(IcmpPred::Slt, tid, b.const_i32(5));
        b.br(c1, e_blk, x1);
        b.switch_to(e_blk);
        b.jump(x1);
        b.switch_to(x1);
        b.jump(g);

        b.switch_to(d_blk);
        let c2 = b.icmp(IcmpPred::Sgt, tid, b.const_i32(5));
        if mirror {
            b.br(c2, f_blk, x2);
        } else {
            b.br(c2, f_blk, f2_blk);
        }
        b.switch_to(f_blk);
        b.jump(x2);
        b.switch_to(f2_blk);
        b.jump(x2);
        b.switch_to(x2);
        b.jump(g);

        b.switch_to(g);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    #[test]
    fn matching_if_then_regions_are_isomorphic() {
        let (f, ids) = two_sided(true);
        let a = Analyses::new(&f);
        let region = detect_region(&f, &a, ids[0]).expect("region");
        let st = &region.true_chain[0];
        let sf = &region.false_chain[0];
        // F2 is unreachable in the mirrored variant, so block counts match
        // only after ignoring it; detect_region only collects reachable
        // blocks, so the subgraphs are {C,E,X1} and {D,F,X2}.
        let pairs = isomorphic_pairs(&f, st, sf).expect("isomorphic");
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], (st.entry, sf.entry));
        // pre-order: entry first, then the then-block, then the join
        assert_eq!(pairs[1], (ids[2], ids[5])); // E <-> F
        assert_eq!(pairs[2], (ids[3], ids[7])); // X1 <-> X2
    }

    #[test]
    fn diamond_vs_if_then_is_not_isomorphic() {
        let (f, ids) = two_sided(false);
        let a = Analyses::new(&f);
        let region = detect_region(&f, &a, ids[0]).expect("region");
        let st = &region.true_chain[0];
        let sf = &region.false_chain[0];
        assert!(isomorphic_pairs(&f, st, sf).is_none());
    }
}
