//! Melding code generation (Algorithm 2 and the surrounding region
//! rewiring).
//!
//! Given a meldable divergent region and a plan (which subgraph pairs to
//! meld, which subgraphs stay unmatched), this module:
//!
//! 1. creates one fresh block per matched block pair,
//! 2. clones φs (copied, never melded), aligned instructions (one clone per
//!    `I-I` pair) and unaligned instructions (tagged with their side),
//! 3. resolves operands through the shared operand map, inserting
//!    `select C, vT, vF` only where the two sides disagree,
//! 4. re-links the region into a straight chain: melded subgraphs inline,
//!    unmatched subgraphs guarded by `br C, ...` (their original blocks are
//!    reused),
//! 5. rewrites the region-exit φs to a per-side select in the final block,
//! 6. applies unpredication (§IV-E) or store-predication, and
//! 7. deletes the now-unreachable original blocks.

use crate::region::{MeldableRegion, Subgraph};
use crate::unpredicate::{predicate_stores, unpredicate_block, GapRun};
use darm_align::instr::{align_block_instructions, AlignmentPair};
use darm_ir::{BlockId, Function, InstData, InstId, Opcode, Value};
use std::collections::HashMap;

/// Which side of the divergent branch an instruction originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Melded from both paths (an `I-I` pair).
    Both,
    /// Only on the true path (`I-G`).
    TrueSide,
    /// Only on the false path (`G-I`).
    FalseSide,
}

/// One element of a region melding plan, in chain order.
#[derive(Debug, Clone)]
pub enum PlanElement {
    /// Meld `st` (true path) with `sf` (false path) using the given
    /// pre-order block correspondence.
    Meld {
        /// True-path subgraph.
        st: Subgraph,
        /// False-path subgraph.
        sf: Subgraph,
        /// Block correspondence in pre-order.
        pairs: Vec<(BlockId, BlockId)>,
        /// The `MP_S` profitability that justified the meld.
        profit: f64,
    },
    /// Keep a true-path subgraph, guarded by the branch condition.
    GapTrue(Subgraph),
    /// Keep a false-path subgraph, guarded by the negated condition.
    GapFalse(Subgraph),
}

/// Statistics of one region meld.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionMeldStats {
    /// Subgraph pairs melded.
    pub melded_subgraphs: usize,
    /// `select` instructions inserted for diverging operands.
    pub selects_inserted: usize,
    /// Unaligned instruction groups split out by unpredication.
    pub unpredicated_groups: usize,
}

struct CloneRecord {
    new_id: InstId,
    src_t: Option<InstId>,
    src_f: Option<InstId>,
    origin: Origin,
}

/// Melds one divergent region according to `plan`. The caller is expected
/// to run SSA repair, `simplify_cfg` and DCE afterwards (the driver does).
pub fn meld_region(
    func: &mut Function,
    region: &MeldableRegion,
    plan: &[PlanElement],
    unpredicate: bool,
) -> RegionMeldStats {
    let mut stats = RegionMeldStats::default();
    let cond = region.cond;

    // ---- Phase A: create melded blocks ----
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for el in plan {
        if let PlanElement::Meld { pairs, .. } = el {
            for &(bt, bf) in pairs {
                let name = format!("{}_{}", func.block_name(bt), func.block_name(bf));
                let m = func.add_block(&name);
                block_map.insert(bt, m);
                block_map.insert(bf, m);
            }
        }
    }

    // ---- Phase B: clone φs, bodies and terminators ----
    let mut operand_map: HashMap<InstId, Value> = HashMap::new();
    let mut records: Vec<CloneRecord> = Vec::new();
    // Gap runs per melded block, for unpredication (recorded in order).
    let mut origins: HashMap<BlockId, Vec<(InstId, Origin)>> = HashMap::new();
    // Melded entry blocks whose φs need their outside pred patched at link
    // time.
    let mut pending_entry_phis: HashMap<BlockId, Vec<InstId>> = HashMap::new();

    for el in plan {
        let PlanElement::Meld { st, sf, pairs, .. } = el else {
            continue;
        };
        for &(bt, bf) in pairs {
            let m = block_map[&bt];
            // φs are copied, never melded (§IV-D "Melding φ Nodes").
            for (side_block, origin) in [(bt, Origin::TrueSide), (bf, Origin::FalseSide)] {
                for phi in func.phis_of(side_block) {
                    let data = func.inst(phi).clone();
                    let new_id = func.add_inst(m, data);
                    operand_map.insert(phi, Value::Inst(new_id));
                    records.push(CloneRecord {
                        new_id,
                        src_t: (origin == Origin::TrueSide).then_some(phi),
                        src_f: (origin == Origin::FalseSide).then_some(phi),
                        origin,
                    });
                    if side_block == st.entry || side_block == sf.entry {
                        pending_entry_phis.entry(m).or_default().push(new_id);
                    }
                }
            }
            // Body alignment (Algorithm 2's ComputeInstrAlignment).
            let alignment = align_block_instructions(func, bt, bf);
            for step in &alignment.steps {
                let (src, src_t, src_f, origin) = match *step {
                    AlignmentPair::Match(it, if_) => (it, Some(it), Some(if_), Origin::Both),
                    AlignmentPair::GapA(it) => (it, Some(it), None, Origin::TrueSide),
                    AlignmentPair::GapB(if_) => (if_, None, Some(if_), Origin::FalseSide),
                };
                let data = func.inst(src).clone();
                let new_id = func.add_inst(m, data);
                if let Some(it) = src_t {
                    operand_map.insert(it, Value::Inst(new_id));
                }
                if let Some(if_) = src_f {
                    operand_map.insert(if_, Value::Inst(new_id));
                }
                origins.entry(m).or_default().push((new_id, origin));
                records.push(CloneRecord {
                    new_id,
                    src_t,
                    src_f,
                    origin,
                });
            }
            // Terminator: by isomorphism both sides have the same kind.
            let tt = func.terminator(bt).expect("terminator");
            let tf = func.terminator(bf).expect("terminator");
            let dt = func.inst(tt).clone();
            // Successors map through `block_map`; an exit edge keeps the
            // *original* exit target as a placeholder that the linker
            // rewrites to the next chain element.
            let map_succ = |target: BlockId| -> BlockId {
                if target == st.exit_target {
                    st.exit_target
                } else {
                    block_map[&target]
                }
            };
            match dt.opcode {
                Opcode::Jump => {
                    let target = map_succ(dt.succs[0]);
                    func.add_inst(m, InstData::terminator(Opcode::Jump, vec![], vec![target]));
                }
                Opcode::Br => {
                    let s0 = map_succ(dt.succs[0]);
                    let s1 = map_succ(dt.succs[1]);
                    let new_id = func.add_inst(
                        m,
                        InstData::terminator(Opcode::Br, vec![dt.operands[0]], vec![s0, s1]),
                    );
                    records.push(CloneRecord {
                        new_id,
                        src_t: Some(tt),
                        src_f: Some(tf),
                        origin: Origin::Both,
                    });
                }
                _ => unreachable!("subgraph terminators are jump/br"),
            }
        }
    }

    // ---- Phase C: link the chain ----
    // The branch at the region entry is replaced by a jump into the chain.
    // `cursor` is the block whose forward edge must be pointed at the next
    // chain element; `placeholder` is the successor to rewrite (None while
    // the cursor has no terminator yet).
    let branch = func
        .terminator(region.branch_block)
        .expect("divergent branch");
    func.remove_inst(branch);
    let mut cursor = region.branch_block;
    let mut placeholder: Option<BlockId> = None;
    let mut guard_n = 0usize;
    // Remember, per melded entry block, which new block feeds it.
    let mut link_pred: HashMap<BlockId, BlockId> = HashMap::new();

    fn link(func: &mut Function, cursor: BlockId, placeholder: Option<BlockId>, target: BlockId) {
        match placeholder {
            None => {
                func.add_inst(
                    cursor,
                    InstData::terminator(Opcode::Jump, vec![], vec![target]),
                );
            }
            Some(ph) => func.replace_succ(cursor, ph, target),
        }
    }

    for el in plan {
        match el {
            PlanElement::Meld { st, .. } => {
                let entry_new = block_map[&st.entry];
                link(func, cursor, placeholder, entry_new);
                link_pred.insert(entry_new, cursor);
                cursor = block_map[&st.exit_block];
                placeholder = Some(st.exit_target);
            }
            PlanElement::GapTrue(sg) | PlanElement::GapFalse(sg) => {
                let is_true = matches!(el, PlanElement::GapTrue(_));
                let guard = func.add_block(&format!("guard.{guard_n}"));
                let join = func.add_block(&format!("guard.join.{guard_n}"));
                guard_n += 1;
                link(func, cursor, placeholder, guard);
                let (s0, s1) = if is_true {
                    (sg.entry, join)
                } else {
                    (join, sg.entry)
                };
                func.add_inst(
                    guard,
                    InstData::terminator(Opcode::Br, vec![cond], vec![s0, s1]),
                );
                // The gap subgraph keeps its blocks; re-point its entry φs
                // and exit edge.
                retarget_outside_phi_preds(func, sg, guard);
                func.replace_succ(sg.exit_block, sg.exit_target, join);
                cursor = join;
                placeholder = None;
            }
        }
    }

    // ---- Phase D: SetOperands ----
    for rec in &records {
        let is_phi = func.inst(rec.new_id).opcode == Opcode::Phi;
        if is_phi {
            // Per-side resolution; incoming blocks remapped, the outside
            // pred patched to the linked predecessor.
            let m = func.inst(rec.new_id).block;
            let n = func.inst(rec.new_id).operands.len();
            for k in 0..n {
                let v = func.inst(rec.new_id).operands[k];
                let p = func.inst(rec.new_id).phi_blocks[k];
                let new_v = resolve(&operand_map, v);
                let new_p = match block_map.get(&p) {
                    Some(&mp) => mp,
                    None => *link_pred.get(&m).unwrap_or(&p),
                };
                let inst = func.inst_mut(rec.new_id);
                inst.operands[k] = new_v;
                inst.phi_blocks[k] = new_p;
            }
            continue;
        }
        match rec.origin {
            Origin::Both => {
                let it = rec.src_t.expect("both sides present");
                let if_ = rec.src_f.expect("both sides present");
                let n = func.inst(rec.new_id).operands.len();
                for k in 0..n {
                    let vt = resolve(&operand_map, func.inst(it).operands[k]);
                    let vf = resolve(&operand_map, func.inst(if_).operands[k]);
                    let merged = if vt == vf {
                        vt
                    } else {
                        let ty = func.value_ty(vt);
                        let sel = func.insert_inst_before(
                            rec.new_id,
                            InstData::new(Opcode::Select, ty, vec![cond, vt, vf]),
                        );
                        stats.selects_inserted += 1;
                        Value::Inst(sel)
                    };
                    func.inst_mut(rec.new_id).operands[k] = merged;
                }
            }
            Origin::TrueSide | Origin::FalseSide => {
                let n = func.inst(rec.new_id).operands.len();
                for k in 0..n {
                    let v = resolve(&operand_map, func.inst(rec.new_id).operands[k]);
                    func.inst_mut(rec.new_id).operands[k] = v;
                }
            }
        }
    }

    // Entry φs of melded blocks may still name pre-link outside preds when
    // the side block's φ listed a block that was itself melded away; the
    // per-record pass above already remapped those. Nothing further needed.
    let _ = pending_entry_phis;

    // ---- Phase E: region-exit φs ----
    // The original region preds of X are the exit blocks of the last
    // subgraph on each path.
    let t_exit = region.true_chain.last().expect("nonempty chain").exit_block;
    let f_exit = region
        .false_chain
        .last()
        .expect("nonempty chain")
        .exit_block;
    let new_t_exit = block_map.get(&t_exit).copied();
    let new_f_exit = block_map.get(&f_exit).copied();
    // Compute every φ's merged value first: phi_remove_incoming strips the
    // old entries from *all* φs of the block at once, so the reads must not
    // be interleaved with the removal.
    let mut merged_entries: Vec<(InstId, Value)> = Vec::new();
    for phi in func.phis_of(region.exit) {
        let vt = func.inst(phi).phi_value_for(t_exit);
        let vf = func.inst(phi).phi_value_for(f_exit);
        let (Some(vt), Some(vf)) = (vt, vf) else {
            continue;
        };
        let vt = resolve(&operand_map, vt);
        let vf = resolve(&operand_map, vf);
        let merged = if vt == vf {
            vt
        } else {
            let ty = func.inst(phi).ty;
            let data = InstData::new(Opcode::Select, ty, vec![cond, vt, vf]);
            let sel = match func.terminator(cursor) {
                Some(t) => func.insert_inst_before(t, data),
                None => func.add_inst(cursor, data),
            };
            stats.selects_inserted += 1;
            Value::Inst(sel)
        };
        merged_entries.push((phi, merged));
    }
    if !merged_entries.is_empty() {
        func.phi_remove_incoming(region.exit, t_exit);
        func.phi_remove_incoming(region.exit, f_exit);
        for (phi, merged) in merged_entries {
            let inst = func.inst_mut(phi);
            inst.phi_blocks.push(cursor);
            inst.operands.push(merged);
        }
    }
    // When gap guards re-pointed a side's exit to a join block, the φ entry
    // for the original exit block is gone already (replace_succ changed the
    // edge, and the φ entries above referenced the original exits). The
    // remaining case — a gap subgraph at the end of a chain — leaves the φ
    // entry keyed by the gap's exit block, which still reaches X only
    // through the join; `phi_value_for` above handled it because the gap's
    // exit block kept its identity.
    link(func, cursor, placeholder, region.exit);
    let _ = (new_t_exit, new_f_exit);

    // ---- Phase F: global use rewrite and cleanup ----
    let keys: Vec<InstId> = operand_map.keys().copied().collect();
    for orig in keys {
        let to = operand_map[&orig];
        func.rauw(Value::Inst(orig), to);
    }
    for el in plan {
        if let PlanElement::Meld { st, sf, .. } = el {
            stats.melded_subgraphs += 1;
            for &b in st.blocks.iter().chain(&sf.blocks) {
                func.remove_block(b);
            }
        }
    }

    // ---- Phase G: unpredication / store predication ----
    for el in plan {
        let PlanElement::Meld { st, .. } = el else {
            continue;
        };
        for &bt in st.blocks.iter() {
            let Some(&m) = block_map.get(&bt) else {
                continue;
            };
            let Some(runs) = origins.get(&m) else {
                continue;
            };
            let gap_runs: Vec<GapRun> = collect_gap_runs(runs);
            if gap_runs.is_empty() {
                continue;
            }
            if unpredicate {
                stats.unpredicated_groups += unpredicate_block(func, m, cond, &gap_runs);
            } else {
                predicate_stores(func, m, cond, &gap_runs);
            }
        }
    }

    stats
}

fn resolve(map: &HashMap<InstId, Value>, v: Value) -> Value {
    match v {
        Value::Inst(id) => map.get(&id).copied().unwrap_or(v),
        _ => v,
    }
}

/// Re-points φ incoming blocks that lie outside the subgraph to `new_pred`.
fn retarget_outside_phi_preds(func: &mut Function, sg: &Subgraph, new_pred: BlockId) {
    for phi in func.phis_of(sg.entry) {
        let n = func.inst(phi).phi_blocks.len();
        for k in 0..n {
            let p = func.inst(phi).phi_blocks[k];
            if !sg.contains(p) {
                func.inst_mut(phi).phi_blocks[k] = new_pred;
            }
        }
    }
}

/// Groups consecutive single-side instructions into gap runs.
fn collect_gap_runs(origins: &[(InstId, Origin)]) -> Vec<GapRun> {
    let mut runs = Vec::new();
    let mut cur: Option<GapRun> = None;
    for &(id, origin) in origins {
        match origin {
            Origin::Both => {
                if let Some(r) = cur.take() {
                    runs.push(r);
                }
            }
            Origin::TrueSide | Origin::FalseSide => {
                let true_side = origin == Origin::TrueSide;
                match &mut cur {
                    Some(r) if r.true_side == true_side => r.insts.push(id),
                    _ => {
                        if let Some(r) = cur.take() {
                            runs.push(r);
                        }
                        cur = Some(GapRun {
                            insts: vec![id],
                            true_side,
                        });
                    }
                }
            }
        }
    }
    if let Some(r) = cur {
        runs.push(r);
    }
    runs
}
