//! The pre-pipeline melding driver, kept verbatim as a differential-testing
//! oracle.
//!
//! [`meld_function_reference`] is the driver loop exactly as it existed
//! before the pass-manager refactor: `Analyses::new` recomputed wholesale
//! at the top of every fixpoint iteration, region detection run twice per
//! candidate (once for sizing, once for processing), and the cleanup
//! transforms called directly with their private analysis recomputation.
//! The `pipeline_bit_identical` regression test in `darm-bench` asserts
//! that [`meld_function`](crate::meld_function) — the cached-analysis
//! pipeline version — produces byte-identical printed IR on every paper
//! kernel, and the `meld_pipeline` compile-time bench measures what the
//! cache saves against this baseline.

use crate::{plan_region, region, Analyses, MeldConfig, MeldStats};
use darm_ir::Function;
use darm_transforms::{repair_ssa, run_dce, run_instcombine, simplify_cfg};

/// Runs the melding pass exactly like the pre-pipeline driver did. Returns
/// cumulative statistics. The function is left in valid SSA form.
pub fn meld_function_reference(func: &mut Function, config: &MeldConfig) -> MeldStats {
    let mut stats = MeldStats::default();
    'outer: for _ in 0..config.max_iterations {
        stats.iterations += 1;
        let a = Analyses::new(func);
        // Candidate regions, innermost (smallest) first: melding an inner
        // diamond before its enclosing region avoids unnecessary region
        // replication (the SB4 situation, §VI-B).
        let mut candidates: Vec<(usize, darm_ir::BlockId)> = a
            .cfg
            .rpo()
            .iter()
            .copied()
            .filter(|&b| a.da.is_divergent_branch(b))
            .map(|b| {
                let size = region::detect_region(func, &a, b)
                    .map(|r| {
                        r.true_chain
                            .iter()
                            .chain(&r.false_chain)
                            .map(|s| s.blocks.len())
                            .sum()
                    })
                    .unwrap_or(usize::MAX / 2);
                (size, b)
            })
            .collect();
        candidates.sort_by_key(|&(size, b)| (size, std::cmp::Reverse(a.cfg.rpo_index(b))));
        for (_, b) in candidates {
            // Region simplification (Definition 3/4) may change the CFG;
            // restart with fresh analyses when it does.
            if region::simplify_region_entry(func, &a, b) {
                continue 'outer;
            }
            let Some(r) = region::detect_region(func, &a, b) else {
                continue;
            };
            let Some((plan, n_repl)) = plan_region(func, &r, config) else {
                continue;
            };
            let rstats = crate::codegen::meld_region(func, &r, &plan, config.unpredicate);
            stats.melded_regions += 1;
            stats.melded_subgraphs += rstats.melded_subgraphs;
            stats.selects_inserted += rstats.selects_inserted;
            stats.unpredicated_groups += rstats.unpredicated_groups;
            stats.replications += n_repl;
            stats.ssa_repairs += repair_ssa(func);
            run_instcombine(func);
            simplify_cfg(func);
            run_dce(func);
            continue 'outer;
        }
        break;
    }
    stats
}
