//! The pre-pipeline melding driver, kept verbatim as a differential-testing
//! oracle.
//!
//! [`meld_function_reference`] is the driver loop exactly as it existed
//! before the pass-manager refactor: `Analyses::new` recomputed wholesale
//! at the top of every fixpoint iteration, region detection run twice per
//! candidate (once for sizing, once for processing), and the cleanup
//! transforms called directly with their private analysis recomputation.
//! The `pipeline_bit_identical` regression test in `darm-bench` asserts
//! that [`meld_function`](crate::meld_function) — the cached-analysis
//! pipeline version — produces byte-identical printed IR on every paper
//! kernel, and the `meld_pipeline` compile-time bench measures what the
//! cache saves against this baseline.

use crate::{plan_region, region, Analyses, MeldConfig, MeldStats};
use darm_analysis::{Cfg, DivergenceAnalysis, DomTree, PostDomTree};
use darm_ir::Function;
use darm_transforms::{
    repair_ssa, repair_ssa_with_pr2, run_dce, run_dce_pr2, run_instcombine, run_instcombine_pr2,
    simplify_cfg, simplify_cfg_with_pr2,
};
use std::sync::Arc;

/// Runs the melding pass exactly like the pre-pipeline driver did. Returns
/// cumulative statistics. The function is left in valid SSA form.
pub fn meld_function_reference(func: &mut Function, config: &MeldConfig) -> MeldStats {
    let mut stats = MeldStats::default();
    'outer: for _ in 0..config.max_iterations {
        stats.iterations += 1;
        let a = Analyses::new(func);
        // Candidate regions, innermost (smallest) first: melding an inner
        // diamond before its enclosing region avoids unnecessary region
        // replication (the SB4 situation, §VI-B).
        let mut candidates: Vec<(usize, darm_ir::BlockId)> = a
            .cfg
            .rpo()
            .iter()
            .copied()
            .filter(|&b| a.da.is_divergent_branch(b))
            .map(|b| {
                let size = region::detect_region(func, &a, b)
                    .map(|r| {
                        r.true_chain
                            .iter()
                            .chain(&r.false_chain)
                            .map(|s| s.blocks.len())
                            .sum()
                    })
                    .unwrap_or(usize::MAX / 2);
                (size, b)
            })
            .collect();
        candidates.sort_by_key(|&(size, b)| (size, std::cmp::Reverse(a.cfg.rpo_index(b))));
        for (_, b) in candidates {
            // Region simplification (Definition 3/4) may change the CFG;
            // restart with fresh analyses when it does.
            if region::simplify_region_entry(func, &a, b) {
                continue 'outer;
            }
            let Some(r) = region::detect_region(func, &a, b) else {
                continue;
            };
            let Some((plan, n_repl)) = plan_region(func, &r, config) else {
                continue;
            };
            let rstats = crate::codegen::meld_region(func, &r, &plan, config.unpredicate);
            stats.melded_regions += 1;
            stats.melded_subgraphs += rstats.melded_subgraphs;
            stats.selects_inserted += rstats.selects_inserted;
            stats.unpredicated_groups += rstats.unpredicated_groups;
            stats.replications += n_repl;
            stats.ssa_repairs += repair_ssa(func);
            run_instcombine(func);
            simplify_cfg(func);
            run_dce(func);
            continue 'outer;
        }
        break;
    }
    stats
}

/// The pass-manager-refactor-era driver ("PR 2"), kept as the differential
/// baseline the `meld_pipeline` bench measures the incremental rework
/// against. Architecture exactly as the era shipped it — the meld fixpoint
/// as a pass under a real [`PassManager`](darm_pipeline::PassManager)
/// with an inner cleanup pipeline,
/// per-pass wall-clock bookkeeping unconditionally on (as `run_quiet` was
/// then), preservation reports applied after every pass, and the pipeline
/// report built at the end — but with the era's *frozen internals*:
/// invalidate-everything analysis management (every meld drops the whole
/// cache), divergence rebuilding a private post-dominator tree and
/// per-definition use vectors ([`DivergenceAnalysis::run_pr2_baseline`]),
/// and whole-function round-based cleanup scans
/// ([`repair_ssa_with_pr2`], [`run_instcombine_pr2`],
/// [`simplify_cfg_with_pr2`], [`run_dce_pr2`]). Produces IR and statistics
/// bit-identical to [`meld_function`](crate::meld_function).
pub fn meld_function_pr2(func: &mut Function, config: &MeldConfig) -> MeldStats {
    use darm_analysis::AnalysisManager;
    use darm_pipeline::{FnPass, Pass, PassManager, PassOutcome, PipelineOptions};
    use std::cell::RefCell;
    use std::rc::Rc;

    // The era's pipelines timed every pass run; replicate with the flag on.
    let timed = PipelineOptions {
        time_passes: true,
        ..PipelineOptions::default()
    };

    struct Pr2MeldPass {
        config: MeldConfig,
        stats: Rc<RefCell<MeldStats>>,
        cleanup: PassManager,
    }

    impl Pass for Pr2MeldPass {
        fn name(&self) -> &str {
            "meld"
        }

        fn run(
            &mut self,
            func: &mut Function,
            am: &mut AnalysisManager,
        ) -> Result<PassOutcome, String> {
            let config = self.config;
            let mut stats = MeldStats::default();
            let mut mutated = false;
            'outer: for _ in 0..config.max_iterations {
                stats.iterations += 1;
                // Analyses from the shared cache; divergence computed the
                // era's way (private post-dominator tree, per-definition
                // use vectors).
                let cfg = am.get::<Cfg>(func);
                let dt = am.get::<DomTree>(func);
                let pdt = am.get::<PostDomTree>(func);
                let da = DivergenceAnalysis::run_pr2_baseline(func, &cfg, &dt);
                let a = Analyses {
                    cfg,
                    dt,
                    pdt,
                    da: Arc::new(da),
                };
                // Candidate scan identical to MeldPass: detection memoized
                // from the sizing pass, innermost-first order.
                let mut candidates: Vec<(usize, darm_ir::BlockId, Option<region::MeldableRegion>)> =
                    a.cfg
                        .rpo()
                        .iter()
                        .copied()
                        .filter(|&b| a.da.is_divergent_branch(b))
                        .map(|b| {
                            let r = region::detect_region(func, &a, b);
                            let size = r
                                .as_ref()
                                .map(|r| {
                                    r.true_chain
                                        .iter()
                                        .chain(&r.false_chain)
                                        .map(|s| s.blocks.len())
                                        .sum()
                                })
                                .unwrap_or(usize::MAX / 2);
                            (size, b, r)
                        })
                        .collect();
                candidates
                    .sort_by_key(|&(size, b, _)| (size, std::cmp::Reverse(a.cfg.rpo_index(b))));
                for (_, b, r) in candidates {
                    if r.is_none() && region::simplify_region_entry(func, &a, b) {
                        mutated = true;
                        am.invalidate_all();
                        continue 'outer;
                    }
                    let Some(r) = r else { continue };
                    let arenas_before = (func.block_capacity(), func.inst_capacity());
                    let Some((plan, n_repl)) = plan_region(func, &r, &config) else {
                        if (func.block_capacity(), func.inst_capacity()) != arenas_before {
                            mutated = true;
                            am.invalidate_all();
                        }
                        continue;
                    };
                    let rstats = crate::codegen::meld_region(func, &r, &plan, config.unpredicate);
                    mutated = true;
                    am.invalidate_all();
                    stats.melded_regions += 1;
                    stats.melded_subgraphs += rstats.melded_subgraphs;
                    stats.selects_inserted += rstats.selects_inserted;
                    stats.unpredicated_groups += rstats.unpredicated_groups;
                    stats.replications += n_repl;
                    let repairs_before = self.cleanup.units_of("ssa-repair");
                    self.cleanup
                        .run_quiet(func, am)
                        .map_err(|e| format!("post-meld cleanup failed: {e}"))?;
                    stats.ssa_repairs +=
                        (self.cleanup.units_of("ssa-repair") - repairs_before) as usize;
                    continue 'outer;
                }
                break;
            }
            {
                let mut sink = self.stats.borrow_mut();
                sink.melded_regions += stats.melded_regions;
                sink.melded_subgraphs += stats.melded_subgraphs;
                sink.replications += stats.replications;
                sink.selects_inserted += stats.selects_inserted;
                sink.unpredicated_groups += stats.unpredicated_groups;
                sink.ssa_repairs += stats.ssa_repairs;
                sink.iterations += stats.iterations;
            }
            Ok(PassOutcome {
                preserved: if mutated {
                    darm_analysis::PreservedAnalyses::none()
                } else {
                    darm_analysis::PreservedAnalyses::all()
                },
                changed: mutated,
                units: stats.melded_subgraphs as u64,
            })
        }
    }

    // Inner cleanup pipeline: the era's order, frozen internals.
    let mut cleanup = PassManager::new(timed.clone());
    cleanup
        .add(Box::new(FnPass::new("ssa-repair", |func, am| {
            let n = repair_ssa_with_pr2(func, am) as u64;
            Ok(if n > 0 {
                PassOutcome::insts_changed(n)
            } else {
                PassOutcome::unchanged()
            })
        })))
        .add(Box::new(FnPass::new("instcombine", |func, am| {
            let n = run_instcombine_pr2(func) as u64;
            Ok(if n > 0 {
                am.invalidate_values();
                PassOutcome::insts_changed(n)
            } else {
                PassOutcome::unchanged()
            })
        })))
        .add(Box::new(FnPass::new("simplify", |func, am| {
            let s = simplify_cfg_with_pr2(func, am);
            let shape = s.folded_const_branches
                + s.folded_same_target_branches
                + s.merged_blocks
                + s.elided_empty_blocks
                + s.removed_unreachable;
            Ok(if shape > 0 {
                PassOutcome::cfg_changed(s.total() as u64)
            } else if s.total() > 0 {
                PassOutcome::insts_changed(s.total() as u64)
            } else {
                PassOutcome::unchanged()
            })
        })))
        .add(Box::new(FnPass::new("dce", |func, am| {
            let n = run_dce_pr2(func) as u64;
            Ok(if n > 0 {
                am.invalidate_values();
                PassOutcome::insts_changed(n)
            } else {
                PassOutcome::unchanged()
            })
        })));

    let sink: Rc<RefCell<MeldStats>> = Rc::default();
    let mut pm = PassManager::new(timed);
    pm.add(Box::new(Pr2MeldPass {
        config: *config,
        stats: sink.clone(),
        cleanup,
    }));
    let report = pm.run(func).expect("pr2 baseline cannot fail");
    std::hint::black_box(report);
    sink.take()
}
