//! Unpredication (§IV-E): moving unaligned instruction groups out of melded
//! blocks into side blocks guarded by the divergent condition, patching
//! def-use chains with `undef`-carrying φs (Fig. 3c). Also the fallback
//! when unpredication is disabled: full predication of unaligned stores via
//! load + select.

use darm_ir::{BlockId, Function, InstData, InstId, Opcode, Type, Value};

/// A maximal run of consecutive single-side instructions inside a melded
/// block.
#[derive(Debug, Clone)]
pub struct GapRun {
    /// The instructions of the run, in block order.
    pub insts: Vec<InstId>,
    /// Whether the run belongs to the true path.
    pub true_side: bool,
}

/// Splits `block` at every gap run: the run moves into a new side block
/// entered only when the divergent condition matches its side, and values
/// defined in the run reach later uses through φs whose other arm is
/// `undef` (exactly Fig. 3c). Returns the number of runs split out.
pub fn unpredicate_block(
    func: &mut Function,
    block: BlockId,
    cond: Value,
    runs: &[GapRun],
) -> usize {
    let mut cur = block;
    let mut count = 0;
    for (n, run) in runs.iter().enumerate() {
        let Some(first) = run.insts.first() else {
            continue;
        };
        let pos = func
            .insts_of(cur)
            .iter()
            .position(|i| i == first)
            .expect("gap run must live in the current block");
        // Split off everything from the run start; the run block keeps the
        // run, the continuation gets the rest (incl. the terminator).
        let run_block =
            func.split_block_at(cur, pos, &format!("{}.split.{n}", func.block_name(block)));
        let cont = func.split_block_at(
            run_block,
            run.insts.len(),
            &format!("{}.tail.{n}", func.block_name(block)),
        );
        func.add_inst(
            run_block,
            InstData::terminator(Opcode::Jump, vec![], vec![cont]),
        );
        let (s_true, s_false) = if run.true_side {
            (run_block, cont)
        } else {
            (cont, run_block)
        };
        func.add_inst(
            cur,
            InstData::terminator(Opcode::Br, vec![cond], vec![s_true, s_false]),
        );
        // Def-use repair: values defined in the run but used later flow
        // through a φ with undef on the skipping arm.
        for &d in &run.insts {
            if func.inst(d).ty == Type::Void {
                continue;
            }
            let users: Vec<InstId> = func
                .users_of(Value::Inst(d))
                .into_iter()
                .filter(|u| !run.insts.contains(u))
                .collect();
            if users.is_empty() {
                continue;
            }
            let ty = func.inst(d).ty;
            let phi = func.insert_inst_at(
                cont,
                0,
                InstData::phi(ty, &[(run_block, Value::Inst(d)), (cur, Value::Undef(ty))]),
            );
            for u in users {
                if u == phi {
                    continue;
                }
                let inst = func.inst_mut(u);
                for op in &mut inst.operands {
                    if *op == Value::Inst(d) {
                        *op = Value::Inst(phi);
                    }
                }
            }
        }
        cur = cont;
        count += 1;
    }
    count
}

/// The predicated alternative used when unpredication is disabled
/// (`MeldConfig::unpredicate == false`): unaligned stores become
/// load → select → store so the wrong-side threads write back the
/// original memory value (§IV-E's description of full predication).
pub fn predicate_stores(func: &mut Function, block: BlockId, cond: Value, runs: &[GapRun]) {
    for run in runs {
        for &d in &run.insts {
            if func.inst(d).opcode != Opcode::Store {
                continue;
            }
            let val = func.inst(d).operands[0];
            let ptr = func.inst(d).operands[1];
            let ty = func.value_ty(val);
            let old = func.insert_inst_before(d, InstData::new(Opcode::Load, ty, vec![ptr]));
            let (a, b) = if run.true_side {
                (val, Value::Inst(old))
            } else {
                (Value::Inst(old), val)
            };
            let sel =
                func.insert_inst_before(d, InstData::new(Opcode::Select, ty, vec![cond, a, b]));
            func.inst_mut(d).operands[0] = Value::Inst(sel);
        }
        let _ = block;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{AddrSpace, Dim, Type};

    /// A single block with [both, gapT, gapT, both] structure, hand-built.
    #[test]
    fn splits_run_and_patches_uses() {
        let mut f = Function::new(
            "up",
            vec![Type::Ptr(AddrSpace::Global), Type::I32],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        let x = b.add(tid, b.const_i32(1)); // both
        let g1 = b.mul(x, x); // true-side gap
        let g2 = b.add(g1, b.const_i32(3)); // true-side gap
        let y = b.sub(g2, tid); // both (uses gap def!)
        let p = b.gep(Type::I32, b.param(0), tid);
        b.store(y, p);
        b.ret(None);
        let ids = f.insts_of(e).to_vec();
        let cond_src = f.add_inst(
            e,
            InstData::new(
                Opcode::Icmp(darm_ir::IcmpPred::Slt),
                Type::I1,
                vec![Value::Param(1), Value::I32(0)],
            ),
        );
        // icmp appended after ret; move it before everything for dominance:
        f.remove_inst(cond_src);
        let cond_id = f.insert_inst_at(
            e,
            0,
            InstData::new(
                Opcode::Icmp(darm_ir::IcmpPred::Slt),
                Type::I1,
                vec![Value::Param(1), Value::I32(0)],
            ),
        );
        let cond = Value::Inst(cond_id);

        let runs = vec![GapRun {
            insts: vec![ids[2], ids[3]],
            true_side: true,
        }];
        let n = unpredicate_block(&mut f, e, cond, &runs);
        assert_eq!(n, 1);
        verify_ssa(&f).unwrap();
        // The function now has entry + run block + tail.
        assert_eq!(f.block_ids().len(), 3);
        // The tail must contain a φ with an undef arm.
        let blocks = f.block_ids();
        let tail = blocks[2];
        let phis = f.phis_of(tail);
        assert_eq!(phis.len(), 1);
        assert!(f.inst(phis[0]).operands.iter().any(|v| v.is_undef()));
    }

    #[test]
    fn predicated_store_reads_old_value() {
        let mut f = Function::new(
            "ps",
            vec![Type::Ptr(AddrSpace::Global), Type::I32],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let c = b.icmp(darm_ir::IcmpPred::Slt, b.param(1), b.const_i32(0));
        let tid = b.thread_idx(Dim::X);
        let p = b.gep(Type::I32, b.param(0), tid);
        let st = {
            b.store(tid, p);
            f.insts_of(e)[f.insts_of(e).len() - 1]
        };
        let mut b = FunctionBuilder::new(&mut f, e);
        b.ret(None);
        let runs = vec![GapRun {
            insts: vec![st],
            true_side: true,
        }];
        predicate_stores(&mut f, e, c, &runs);
        verify_ssa(&f).unwrap();
        // store operand is now a select over a load of the old value
        let ops = &f.inst(st).operands;
        let sel = ops[0].as_inst().unwrap();
        assert_eq!(f.inst(sel).opcode, Opcode::Select);
        let old = f.inst(sel).operands[2].as_inst().unwrap();
        assert_eq!(f.inst(old).opcode, Opcode::Load);
    }
}
