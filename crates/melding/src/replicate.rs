//! Region replication: basic block ↔ region melding (Definition 6, case 2).
//!
//! To meld a single basic block `A` with a multi-block SESE subgraph `M`,
//! the paper replicates `M`'s control-flow structure to create `L'`, places
//! `A` at the position of the most profitable matching block, concretizes
//! the branch conditions of `L'` so execution always flows through `A`, and
//! then melds `L'` with `M` as in the region-region case (§IV-C, case 2 of
//! Fig. 2).

use crate::region::Subgraph;
use darm_align::block_melding_profit;
use darm_ir::cost;
use darm_ir::{BlockId, Function, InstData, Opcode, Value};
use std::collections::HashMap;

/// Whether a subgraph contains a cycle. Region replication concretizes
/// branch conditions to constants along one path; doing that to a loop's
/// exit branch would make the replica spin forever, so cyclic subgraphs are
/// never used as replication targets.
pub fn has_cycle(func: &Function, sg: &Subgraph) -> bool {
    // Kahn's algorithm over the subgraph-internal edges: a cycle exists iff
    // the topological sort cannot consume every block.
    let mut indeg: HashMap<BlockId, usize> = sg.blocks.iter().map(|&b| (b, 0)).collect();
    for &b in &sg.blocks {
        for s in func.succs(b) {
            if sg.contains(s) {
                *indeg.get_mut(&s).expect("internal block") += 1;
            }
        }
    }
    let mut ready: Vec<BlockId> = indeg
        .iter()
        .filter_map(|(&b, &d)| (d == 0).then_some(b))
        .collect();
    let mut consumed = 0;
    while let Some(b) = ready.pop() {
        consumed += 1;
        for s in func.succs(b) {
            if sg.contains(s) {
                let d = indeg.get_mut(&s).expect("internal block");
                *d -= 1;
                if *d == 0 {
                    ready.push(s);
                }
            }
        }
    }
    consumed != sg.blocks.len()
}

/// Chooses the block of `multi` with the highest melding profitability
/// against `single`'s one block. Returns `(position, MP_S)` where `MP_S`
/// is the subgraph profitability of the resulting replication (empty
/// replicated blocks contribute weight but no common instructions).
pub fn best_position(func: &Function, single: &Subgraph, multi: &Subgraph) -> (BlockId, f64) {
    let a = single.entry;
    let lat = |b: BlockId| -> f64 {
        func.insts_of(b)
            .iter()
            .filter(|&&i| {
                let op = func.inst(i).opcode;
                !op.is_phi() && !op.is_terminator()
            })
            .map(|&i| cost::latency_of(func, i) as f64)
            .sum()
    };
    let lat_a = lat(a);
    let total: f64 = lat_a + multi.blocks.iter().map(|&b| lat(b)).sum::<f64>();
    let mut best = (multi.entry, f64::MIN);
    for &b in &multi.blocks {
        let mp = block_melding_profit(func, a, b);
        let profit = if total == 0.0 {
            0.0
        } else {
            mp * (lat_a + lat(b)) / total
        };
        if profit > best.1 {
            best = (b, profit);
        }
    }
    best
}

/// Physically replicates `multi`'s structure around `single`'s block,
/// producing a subgraph isomorphic to `multi` whose execution always passes
/// through `single`'s block (placed at `position`).
///
/// `single.entry` is reused as the replicated block at `position`: its body
/// stays, and its terminator is replaced to mirror `position`'s terminator
/// shape with concretized (constant) conditions steering along a path
/// `multi.entry → position → multi.exit_block`.
///
/// Returns `None` if `single`'s block carries φs (cannot be repositioned).
pub fn replicate(
    func: &mut Function,
    single: &Subgraph,
    multi: &Subgraph,
    position: BlockId,
) -> Option<Subgraph> {
    let a = single.entry;
    if !func.phis_of(a).is_empty() {
        return None;
    }
    // Map each block of `multi` to its replica; `position` maps to `a`.
    let mut lmap: HashMap<BlockId, BlockId> = HashMap::new();
    for &m in &multi.blocks {
        let replica = if m == position {
            a
        } else {
            func.add_block(&format!("{}.rep", func.block_name(m)))
        };
        lmap.insert(m, replica);
    }
    // The concretized path: entry → position → exit_block.
    let path = {
        let mut p = bfs_path(func, multi, multi.entry, position)?;
        let q = bfs_path(func, multi, position, multi.exit_block)?;
        p.extend(q.into_iter().skip(1));
        p
    };
    let path_next: HashMap<BlockId, BlockId> = path.windows(2).map(|w| (w[0], w[1])).collect();

    // Terminators: mirror `multi`, steering constants along the path.
    for &m in &multi.blocks {
        let replica = lmap[&m];
        if replica == a {
            // Drop A's original jump; it is re-created below.
            let t = func.terminator(a).expect("single block has a terminator");
            func.remove_inst(t);
        }
        let t = func.terminator(m).expect("subgraph block has a terminator");
        let data = func.inst(t).clone();
        let map_succ = |s: BlockId| -> BlockId {
            if s == multi.exit_target {
                single.exit_target
            } else {
                lmap[&s]
            }
        };
        match data.opcode {
            Opcode::Jump => {
                let target = map_succ(data.succs[0]);
                func.add_inst(
                    replica,
                    InstData::terminator(Opcode::Jump, vec![], vec![target]),
                );
            }
            Opcode::Br => {
                let (s0, s1) = (data.succs[0], data.succs[1]);
                let cond = match path_next.get(&m) {
                    Some(&nxt) if nxt == s1 && nxt != s0 => Value::I1(false),
                    _ => Value::I1(true),
                };
                func.add_inst(
                    replica,
                    InstData::terminator(Opcode::Br, vec![cond], vec![map_succ(s0), map_succ(s1)]),
                );
            }
            _ => return None,
        }
    }

    let mut blocks: Vec<BlockId> = lmap.values().copied().collect();
    blocks.sort();
    Some(Subgraph {
        entry: lmap[&multi.entry],
        blocks,
        exit_block: lmap[&multi.exit_block],
        exit_target: single.exit_target,
    })
}

/// A simple path `from → to` within the subgraph, by BFS.
fn bfs_path(func: &Function, sg: &Subgraph, from: BlockId, to: BlockId) -> Option<Vec<BlockId>> {
    let mut prev: HashMap<BlockId, BlockId> = HashMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = std::collections::HashSet::from([from]);
    while let Some(b) = queue.pop_front() {
        if b == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[&cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for s in func.succs(b) {
            if sg.contains(s) && seen.insert(s) {
                prev.insert(s, b);
                queue.push_back(s);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isomorphism::isomorphic_pairs;
    use crate::region::{detect_region, Analyses};
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    /// True path: single block A (an add+mul). False path: if-then region
    /// whose then-block has the same computation as A.
    fn bb_vs_region() -> (Function, Vec<BlockId>) {
        let mut f = Function::new("rep", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let a_blk = f.add_block("A");
        let r1 = f.add_block("R1");
        let rt = f.add_block("RT");
        let rx = f.add_block("RX");
        let g = f.add_block("G");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c0 = b.icmp(IcmpPred::Slt, tid, b.param(0));
        b.br(c0, a_blk, r1);
        b.switch_to(a_blk);
        let x1 = b.add(tid, b.const_i32(1));
        let _y1 = b.mul(x1, x1);
        b.jump(g);
        b.switch_to(r1);
        let c1 = b.icmp(IcmpPred::Sgt, tid, b.const_i32(7));
        b.br(c1, rt, rx);
        b.switch_to(rt);
        let x2 = b.add(tid, b.const_i32(2));
        let _y2 = b.mul(x2, x2);
        b.jump(rx);
        b.switch_to(rx);
        b.jump(g);
        b.switch_to(g);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    #[test]
    fn picks_the_matching_block() {
        let (f, ids) = bb_vs_region();
        let a = Analyses::new(&f);
        let region = detect_region(&f, &a, ids[0]).expect("region");
        let single = &region.true_chain[0];
        let multi = &region.false_chain[0];
        assert!(single.is_single_block());
        assert!(!multi.is_single_block());
        let (pos, profit) = best_position(&f, single, multi);
        assert_eq!(pos, ids[3]); // RT has the matching add+mul
        assert!(profit > 0.1, "profit {profit}");
    }

    #[test]
    fn replication_is_isomorphic_to_the_region() {
        let (mut f, ids) = bb_vs_region();
        let a = Analyses::new(&f);
        let region = detect_region(&f, &a, ids[0]).expect("region");
        let single = region.true_chain[0].clone();
        let multi = region.false_chain[0].clone();
        let (pos, _) = best_position(&f, &single, &multi);
        let replicated = replicate(&mut f, &single, &multi, pos).expect("replicable");
        assert_eq!(replicated.blocks.len(), multi.blocks.len());
        assert_eq!(replicated.exit_target, single.exit_target);
        let pairs = isomorphic_pairs(&f, &replicated, &multi).expect("isomorphic");
        assert_eq!(pairs.len(), multi.blocks.len());
        // A sits at the position of RT.
        assert!(pairs.contains(&(single.entry, pos)));
        // The replicated branch is concretized to always reach A.
        let rb = replicated.entry;
        let t = f.terminator(rb).unwrap();
        assert_eq!(f.inst(t).operands[0], Value::I1(true));
        assert_eq!(f.inst(t).succs[0], single.entry);
    }
}
