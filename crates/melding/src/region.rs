//! Meldable divergent region detection (Definition 5) and SESE chain
//! construction with region simplification (Definitions 3–4).

use darm_analysis::{AnalysisManager, Cfg, DivergenceAnalysis, DomTree, PostDomTree};
use darm_ir::{BlockId, Function, InstData, Opcode, Value};
use std::sync::Arc;

/// A divergent region `(E, X)` whose true/false paths decompose into SESE
/// subgraph chains (the unit Algorithm 1 operates on).
#[derive(Debug, Clone)]
pub struct MeldableRegion {
    /// The block whose terminator is the divergent branch (`E`).
    pub branch_block: BlockId,
    /// The branch condition (`C` in Algorithm 2).
    pub cond: Value,
    /// The region exit (`X`), the IPDOM of the branch.
    pub exit: BlockId,
    /// Ordered SESE subgraphs of the true path.
    pub true_chain: Vec<Subgraph>,
    /// Ordered SESE subgraphs of the false path.
    pub false_chain: Vec<Subgraph>,
}

/// One SESE subgraph in a chain. Unlike the raw anchors-based decomposition
/// in `darm-analysis`, join blocks whose predecessors all lie inside the
/// subgraph are absorbed, so a diamond includes its join and the subgraph
/// has a unique exit block carrying the single exit edge (a *simple region*
/// after simplification).
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Entry block (single incoming edge from outside after simplification).
    pub entry: BlockId,
    /// All blocks, sorted by arena index.
    pub blocks: Vec<BlockId>,
    /// The unique block holding the exit edge.
    pub exit_block: BlockId,
    /// The block the exit edge targets (next subgraph's entry or the region
    /// exit).
    pub exit_target: BlockId,
}

impl Subgraph {
    /// Whether the subgraph is a single basic block.
    pub fn is_single_block(&self) -> bool {
        self.blocks.len() == 1
    }

    /// Whether `b` is one of the subgraph's blocks.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }

    /// Whether the subgraph contains an instruction that forbids melding
    /// (barriers or warp-level intrinsics, §IV-C).
    pub fn has_meld_barrier(&self, func: &Function) -> bool {
        self.blocks.iter().any(|&b| {
            func.insts_of(b).iter().any(|&i| {
                let op = func.inst(i).opcode;
                op == Opcode::Syncthreads || op.is_warp_intrinsic()
            })
        })
    }
}

/// Bundle of CFG analyses used throughout the pass. The components are
/// shared [`Arc`] handles so a snapshot can be drawn from (and returned to)
/// an [`AnalysisManager`] cache without copying, and can cross threads once
/// kernels meld on a pool.
#[derive(Debug)]
pub struct Analyses {
    /// CFG snapshot.
    pub cfg: Arc<Cfg>,
    /// Dominator tree.
    pub dt: Arc<DomTree>,
    /// Post-dominator tree.
    pub pdt: Arc<PostDomTree>,
    /// Divergence analysis.
    pub da: Arc<DivergenceAnalysis>,
}

impl Analyses {
    /// Computes all analyses for the current state of `func`.
    pub fn new(func: &Function) -> Analyses {
        Analyses::from_manager(func, &mut AnalysisManager::new())
    }

    /// Draws the bundle from a shared analysis cache: components that are
    /// still valid from earlier pipeline work are reused, the rest are
    /// computed (and left cached for whoever asks next).
    pub fn from_manager(func: &Function, am: &mut AnalysisManager) -> Analyses {
        Analyses {
            cfg: am.get::<Cfg>(func),
            dt: am.get::<DomTree>(func),
            pdt: am.get::<PostDomTree>(func),
            da: am.get::<DivergenceAnalysis>(func),
        }
    }
}

/// Detects the meldable divergent region entered at `b`, if any
/// (Definition 5): `b` ends in a divergent conditional branch and neither
/// successor post-dominates the other.
pub fn detect_region(func: &Function, a: &Analyses, b: BlockId) -> Option<MeldableRegion> {
    let term = func.terminator(b)?;
    if func.inst(term).opcode != Opcode::Br {
        return None;
    }
    if !a.da.is_divergent_branch(b) {
        return None;
    }
    let succs = &func.inst(term).succs;
    let (bt, bf) = (succs[0], succs[1]);
    if bt == bf {
        return None;
    }
    // Condition 2: neither path is empty.
    if a.pdt.post_dominates(bt, bf) || a.pdt.post_dominates(bf, bt) {
        return None;
    }
    let exit = a.pdt.ipdom(b)?;
    let cond = func.inst(term).operands[0];
    let true_chain = compute_chain(func, a, bt, exit)?;
    let false_chain = compute_chain(func, a, bf, exit)?;
    if true_chain.is_empty() || false_chain.is_empty() {
        return None;
    }
    Some(MeldableRegion {
        branch_block: b,
        cond,
        exit,
        true_chain,
        false_chain,
    })
}

/// Decomposes the path `start → stop` into SESE subgraphs, absorbing join
/// anchors whose predecessors all lie inside the current subgraph (so an
/// if-then-else includes its join block). Returns `None` when the path has
/// side entries or is otherwise not decomposable.
pub fn compute_chain(
    _func: &Function,
    a: &Analyses,
    start: BlockId,
    stop: BlockId,
) -> Option<Vec<Subgraph>> {
    let mut chain = Vec::new();
    let mut cur = start;
    let budget = a.cfg.rpo().len() + 2;
    let mut steps = 0;
    while cur != stop {
        steps += 1;
        if steps > budget {
            return None;
        }
        let mut next = a.pdt.ipdom(cur)?;
        let mut blocks;
        loop {
            blocks = a.cfg.reachable_avoiding(cur, next);
            if blocks.contains(&stop) {
                return None;
            }
            // Count exit edges and check whether `next` can be absorbed.
            if next == stop {
                break;
            }
            let exit_edges: usize = blocks
                .iter()
                .map(|&blk| a.cfg.succs(blk).iter().filter(|&&s| s == next).count())
                .sum();
            let preds_inside = a.cfg.preds(next).iter().all(|p| blocks.contains(p));
            if exit_edges > 1 && preds_inside {
                next = a.pdt.ipdom(next)?;
                continue;
            }
            break;
        }
        // Single-entry check: no side entries into the subgraph body.
        for &blk in &blocks {
            if !a.dt.dominates(cur, blk) {
                return None;
            }
        }
        blocks.sort();
        // The unique exit block: the block carrying the edge into `next`.
        let exit_blocks: Vec<BlockId> = blocks
            .iter()
            .copied()
            .filter(|&blk| a.cfg.succs(blk).contains(&next))
            .collect();
        let exit_block = match exit_blocks.len() {
            1 => exit_blocks[0],
            // Multiple exit edges into the region exit: region
            // simplification must insert a landing pad first.
            _ => return None,
        };
        chain.push(Subgraph {
            entry: cur,
            blocks,
            exit_block,
            exit_target: next,
        });
        cur = next;
    }
    Some(chain)
}

/// Region simplification (Definition 3/4): gives every chain position a
/// dedicated single exit edge by inserting landing-pad blocks where a
/// subgraph would otherwise have several edges to the region exit, and
/// removes trivial φs at subgraph entries. Returns `true` if the CFG
/// changed (callers must recompute analyses and re-detect).
pub fn simplify_region_entry(func: &mut Function, a: &Analyses, b: BlockId) -> bool {
    let Some(term) = func.terminator(b) else {
        return false;
    };
    if func.inst(term).opcode != Opcode::Br {
        return false;
    }
    let succs = func.inst(term).succs.clone();
    let (bt, bf) = (succs[0], succs[1]);
    let Some(exit) = a.pdt.ipdom(b) else {
        return false;
    };
    let mut changed = false;
    for start in [bt, bf] {
        if start == exit {
            continue;
        }
        changed |= pad_exits_on_path(func, a, start, exit);
    }
    changed
}

/// Walks the ipdom chain from `start` to `stop`; wherever a would-be
/// subgraph has multiple edges into an anchor it cannot absorb, inserts a
/// landing pad collecting those edges.
fn pad_exits_on_path(func: &mut Function, a: &Analyses, start: BlockId, stop: BlockId) -> bool {
    let changed = false;
    let mut cur = start;
    let budget = a.cfg.rpo().len() + 2;
    let mut steps = 0;
    while cur != stop {
        steps += 1;
        if steps > budget {
            break;
        }
        let mut next = match a.pdt.ipdom(cur) {
            Some(n) => n,
            None => break,
        };
        let mut blocks;
        loop {
            blocks = a.cfg.reachable_avoiding(cur, next);
            if next == stop {
                break;
            }
            let exit_edges: usize = blocks
                .iter()
                .map(|&blk| a.cfg.succs(blk).iter().filter(|&&s| s == next).count())
                .sum();
            let preds_inside = a.cfg.preds(next).iter().all(|p| blocks.contains(p));
            if exit_edges > 1 && preds_inside {
                next = match a.pdt.ipdom(next) {
                    Some(n) => n,
                    None => return changed,
                };
                continue;
            }
            break;
        }
        let exit_sources: Vec<BlockId> = blocks
            .iter()
            .copied()
            .filter(|&blk| a.cfg.succs(blk).contains(&next))
            .collect();
        if exit_sources.len() > 1 {
            insert_landing_pad(func, &exit_sources, next);
            // CFG changed: the caller recomputes and calls again.
            return true;
        }
        cur = next;
    }
    changed
}

/// Inserts a block `L` so that every edge `s → target` (s ∈ sources) becomes
/// `s → L → target`, migrating φ entries into new φs in `L`.
pub fn insert_landing_pad(func: &mut Function, sources: &[BlockId], target: BlockId) -> BlockId {
    let pad = func.add_block(&format!("{}.pad", func.block_name(target)));
    // Build φs in the pad for every φ in the target that distinguishes the
    // rerouted predecessors.
    let phis = func.phis_of(target);
    for phi in phis {
        let ty = func.inst(phi).ty;
        let mut incoming = Vec::new();
        for &s in sources {
            if let Some(v) = func.inst(phi).phi_value_for(s) {
                incoming.push((s, v));
            }
        }
        if incoming.is_empty() {
            continue;
        }
        let pad_phi = func.insert_inst_at(pad, 0, InstData::phi(ty, &incoming));
        // Replace the source entries with a single entry from the pad.
        for &s in sources {
            let inst = func.inst_mut(phi);
            let mut k = 0;
            while k < inst.phi_blocks.len() {
                if inst.phi_blocks[k] == s {
                    inst.phi_blocks.remove(k);
                    inst.operands.remove(k);
                } else {
                    k += 1;
                }
            }
        }
        let inst = func.inst_mut(phi);
        inst.phi_blocks.push(pad);
        inst.operands.push(Value::Inst(pad_phi));
    }
    func.add_inst(
        pad,
        InstData::terminator(Opcode::Jump, vec![], vec![target]),
    );
    for &s in sources {
        func.replace_succ(s, target, pad);
    }
    pad
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    /// The bitonic-sort shaped region: divergent branch at B; each side is
    /// an if-then region ({C, E} joining at X1 / {D, F} joining at X2).
    fn bitonic_shape() -> (Function, Vec<BlockId>) {
        let mut f = Function::new("bit", vec![Type::I32], Type::Void);
        let sh = f.add_shared_array("s", Type::I32, 64);
        let b_blk = f.entry();
        let c_blk = f.add_block("C");
        let e_blk = f.add_block("E");
        let x1 = f.add_block("X1");
        let d_blk = f.add_block("D");
        let f_blk = f.add_block("F");
        let x2 = f.add_block("X2");
        let g_blk = f.add_block("G");
        let mut b = FunctionBuilder::new(&mut f, b_blk);
        let tid = b.thread_idx(Dim::X);
        let k = b.and(tid, b.param(0));
        let c0 = b.icmp(IcmpPred::Eq, k, b.const_i32(0));
        let base = b.shared_base(sh);
        let p1 = b.gep(Type::I32, base, tid);
        let v1 = b.load(Type::I32, p1);
        b.br(c0, c_blk, d_blk);

        b.switch_to(c_blk);
        let c1 = b.icmp(IcmpPred::Slt, v1, b.const_i32(10));
        b.br(c1, e_blk, x1);
        b.switch_to(e_blk);
        b.store(tid, p1);
        b.jump(x1);
        b.switch_to(x1);
        b.jump(g_blk);

        b.switch_to(d_blk);
        let c2 = b.icmp(IcmpPred::Sgt, v1, b.const_i32(10));
        b.br(c2, f_blk, x2);
        b.switch_to(f_blk);
        b.store(tid, p1);
        b.jump(x2);
        b.switch_to(x2);
        b.jump(g_blk);

        b.switch_to(g_blk);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    #[test]
    fn detects_bitonic_region() {
        let (f, ids) = bitonic_shape();
        verify_ssa(&f).unwrap();
        let a = Analyses::new(&f);
        let region = detect_region(&f, &a, ids[0]).expect("region");
        assert_eq!(region.exit, ids[7]); // G
        assert_eq!(region.true_chain.len(), 1);
        assert_eq!(region.false_chain.len(), 1);
        // The if-then subgraph absorbs its join: {C, E, X1}.
        let t = &region.true_chain[0];
        assert_eq!(t.blocks, vec![ids[1], ids[2], ids[3]]);
        assert_eq!(t.exit_block, ids[3]); // X1 carries the exit edge
        assert!(!t.is_single_block());
    }

    #[test]
    fn uniform_branch_is_not_a_region() {
        let mut f = Function::new("u", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0)); // uniform
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let a = Analyses::new(&f);
        assert!(detect_region(&f, &a, entry).is_none());
    }

    #[test]
    fn if_then_without_else_fails_condition_2() {
        // entry -> {t, x}; t -> x. x post-dominates t: no melding partner.
        let mut f = Function::new("it", vec![], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(4));
        b.br(c, t, x);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let a = Analyses::new(&f);
        assert!(detect_region(&f, &a, entry).is_none());
    }

    #[test]
    fn barrier_in_subgraph_is_flagged() {
        let (mut f, ids) = bitonic_shape();
        // Plant a barrier in E.
        let term = f.terminator(ids[2]).unwrap();
        f.insert_inst_before(term, InstData::new(Opcode::Syncthreads, Type::Void, vec![]));
        let a = Analyses::new(&f);
        let region = detect_region(&f, &a, ids[0]).expect("region");
        assert!(region.true_chain[0].has_meld_barrier(&f));
        assert!(!region.false_chain[0].has_meld_barrier(&f));
    }

    #[test]
    fn landing_pad_migrates_phis() {
        // t and e both jump to x which has a φ; pad collects both edges.
        let mut f = Function::new("pad", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let v1 = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        let v2 = b.add(b.param(0), b.const_i32(2));
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, v1), (e, v2)]);
        b.ret(Some(p));

        let pad = insert_landing_pad(&mut f, &[t, e], x);
        verify_ssa(&f).unwrap();
        assert_eq!(f.succs(t), vec![pad]);
        assert_eq!(f.succs(e), vec![pad]);
        assert_eq!(f.phis_of(pad).len(), 1);
        // x's φ now has a single incoming, from the pad.
        let xphi = f.phis_of(x)[0];
        assert_eq!(f.inst(xphi).phi_blocks, vec![pad]);
    }
}
