//! Tail merging (Chen et al., SAS'03) — the weakest of the three techniques
//! in the paper's Table I. Merges *identical* basic blocks that share a
//! successor; unlike branch fusion and DARM it cannot handle distinct
//! instruction sequences or complex control flow.

use darm_ir::{BlockId, Function, Value};
use std::collections::HashMap;

/// Merges pairs of blocks that end in a jump to the same successor and
/// compute identical instruction sequences (same opcodes, same operands up
/// to their own internal definitions). Returns the number of merged blocks.
pub fn tail_merge(func: &mut Function) -> usize {
    let mut merged = 0;
    loop {
        let mut found = None;
        let blocks = func.block_ids();
        'search: for (i, &b1) in blocks.iter().enumerate() {
            for &b2 in blocks.iter().skip(i + 1) {
                if b1 == func.entry() || b2 == func.entry() {
                    continue;
                }
                if func.succs(b1).len() != 1 || func.succs(b1) != func.succs(b2) {
                    continue;
                }
                if blocks_identical(func, b1, b2) {
                    found = Some((b1, b2));
                    break 'search;
                }
            }
        }
        let Some((b1, b2)) = found else { return merged };
        merge_into(func, b1, b2);
        merged += 1;
    }
}

/// Whether two blocks compute the same values: equal length, pairwise same
/// opcode/type, and operands equal after mapping b2's internal defs to
/// b1's.
fn blocks_identical(func: &Function, b1: BlockId, b2: BlockId) -> bool {
    let i1 = func.insts_of(b1);
    let i2 = func.insts_of(b2);
    if i1.len() != i2.len() {
        return false;
    }
    let mut map: HashMap<Value, Value> = HashMap::new();
    for (&a, &b) in i1.iter().zip(i2) {
        let da = func.inst(a);
        let db = func.inst(b);
        if da.opcode != db.opcode || da.ty != db.ty || da.operands.len() != db.operands.len() {
            return false;
        }
        if da.opcode.is_phi() {
            return false; // φ blocks are not mergeable this way
        }
        for (&oa, &ob) in da.operands.iter().zip(&db.operands) {
            let mapped = map.get(&ob).copied().unwrap_or(ob);
            if mapped != oa {
                return false;
            }
        }
        map.insert(Value::Inst(b), Value::Inst(a));
    }
    true
}

/// Redirects all predecessors of `b2` to `b1` and removes `b2`. The shared
/// successor's φs must see identical values from both (guaranteed by
/// `blocks_identical`), so `b2`'s φ entries are dropped after retargeting.
fn merge_into(func: &mut Function, b1: BlockId, b2: BlockId) {
    // Map b2's defs onto b1's for uses elsewhere.
    let i1 = func.insts_of(b1).to_vec();
    let i2 = func.insts_of(b2).to_vec();
    for (&a, &b) in i1.iter().zip(&i2) {
        func.rauw(Value::Inst(b), Value::Inst(a));
    }
    let succ = func.succs(b2)[0];
    func.phi_remove_incoming(succ, b2);
    // Retarget every predecessor edge b? -> b2 onto b1.
    for p in func.block_ids() {
        let targets_b2 = func.succs(p).contains(&b2);
        if targets_b2 {
            func.replace_succ(p, b2, b1);
        }
    }
    func.remove_block(b2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    /// Diamond with *identical* arms: tail merging applies (Table I row 1).
    #[test]
    fn merges_identical_diamond_arms() {
        let mut f = Function::new(
            "tm",
            vec![Type::Ptr(darm_ir::AddrSpace::Global)],
            Type::Void,
        );
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(16));
        b.br(c, t, e);
        for blk in [t, e] {
            b.switch_to(blk);
            let v = b.mul(tid, b.const_i32(3));
            let p = b.gep(Type::I32, b.param(0), tid);
            b.store(v, p);
            b.jump(x);
        }
        b.switch_to(x);
        b.ret(None);

        let n = tail_merge(&mut f);
        assert_eq!(n, 1);
        verify_ssa(&f).unwrap();
        assert_eq!(f.block_ids().len(), 3); // entry, merged arm, x
    }

    /// Distinct arms (the -R variants): tail merging cannot apply.
    #[test]
    fn distinct_arms_not_merged() {
        let mut f = Function::new(
            "tm2",
            vec![Type::Ptr(darm_ir::AddrSpace::Global)],
            Type::Void,
        );
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(16));
        b.br(c, t, e);
        b.switch_to(t);
        let v1 = b.mul(tid, b.const_i32(3));
        let p1 = b.gep(Type::I32, b.param(0), tid);
        b.store(v1, p1);
        b.jump(x);
        b.switch_to(e);
        let v2 = b.add(tid, b.const_i32(7)); // different computation
        let p2 = b.gep(Type::I32, b.param(0), tid);
        b.store(v2, p2);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);

        assert_eq!(tail_merge(&mut f), 0);
        verify_ssa(&f).unwrap();
    }
}
