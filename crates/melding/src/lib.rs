#![warn(missing_docs)]

//! # darm-melding
//!
//! The DARM control-flow melding transformation (Saumya et al., CGO 2022)
//! plus the two baselines the paper compares against:
//!
//! * [`meld_function`] — the full DARM pass (Algorithm 1): detect meldable
//!   divergent regions, align their SESE subgraph chains by melding
//!   profitability, meld profitable pairs (region-region, basic
//!   block-region via *region replication*, and basic block-basic block),
//!   unpredicate unaligned groups, and clean up — to a fixpoint.
//! * [`MeldMode::BranchFusion`] — DARM restricted to diamond-shaped
//!   control flow, the way the paper's own evaluation implements Branch
//!   Fusion (§VI-A).
//! * [`tail_merge()`](tail_merge::tail_merge) — classic tail merging (Table I's weakest row).
//!
//! ```
//! use darm_melding::{meld_function, MeldConfig};
//! use darm_ir::{builder::FunctionBuilder, Function, Type, AddrSpace, Dim, IcmpPred};
//!
//! // if (tid < n) out[tid] = tid*2+1 else out[tid] = tid*3+7 — meldable.
//! let mut f = Function::new("k", vec![Type::Ptr(AddrSpace::Global), Type::I32], Type::Void);
//! let entry = f.entry();
//! let t = f.add_block("t");
//! let e = f.add_block("e");
//! let x = f.add_block("x");
//! let mut b = FunctionBuilder::new(&mut f, entry);
//! let tid = b.thread_idx(Dim::X);
//! let c = b.icmp(IcmpPred::Slt, tid, b.param(1));
//! b.br(c, t, e);
//! b.switch_to(t);
//! let v1 = b.mul(tid, b.const_i32(2));
//! let v1b = b.add(v1, b.const_i32(1));
//! let p1 = b.gep(Type::I32, b.param(0), tid);
//! b.store(v1b, p1);
//! b.jump(x);
//! b.switch_to(e);
//! let v2 = b.mul(tid, b.const_i32(3));
//! let v2b = b.add(v2, b.const_i32(7));
//! let p2 = b.gep(Type::I32, b.param(0), tid);
//! b.store(v2b, p2);
//! b.jump(x);
//! b.switch_to(x);
//! b.ret(None);
//!
//! let stats = meld_function(&mut f, &MeldConfig::default());
//! assert_eq!(stats.melded_subgraphs, 1);
//! ```

pub mod codegen;
pub mod isomorphism;
pub mod pass;
pub mod reference;
pub mod region;
pub mod replicate;
pub mod tail_merge;
pub mod unpredicate;

pub use codegen::{PlanElement, RegionMeldStats};
pub use pass::{MeldPass, MeldStatsSink, TailMergePass};
pub use reference::{meld_function_pr2, meld_function_reference};
pub use region::{Analyses, MeldableRegion, Subgraph};
pub use tail_merge::tail_merge;

use darm_align::{global_align, subgraph_melding_profit, AlignStep};
use darm_ir::Function;
use darm_pipeline::{PassManager, PassRegistry, PipelineError, PipelineOptions, PipelineReport};

/// Which melding technique to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeldMode {
    /// Full DARM: region-region, block-region (replication), block-block.
    #[default]
    Darm,
    /// Branch fusion: only single block ↔ single block melds (diamonds),
    /// as in the paper's §VI-A baseline implementation.
    BranchFusion,
}

/// Configuration of the melding pass.
#[derive(Debug, Clone, Copy)]
pub struct MeldConfig {
    /// Technique to apply.
    pub mode: MeldMode,
    /// Melding profitability threshold; the paper's default is 0.2 (§V,
    /// sensitivity study in Fig. 12).
    pub threshold: f64,
    /// Whether to run unpredication (§IV-E). Disabling it is the ablation
    /// studied by `bench ablation_unpredication`.
    pub unpredicate: bool,
    /// Fixpoint iteration cap for Algorithm 1's outer loop.
    pub max_iterations: usize,
    /// Whether the fixpoint maintains analyses incrementally and scopes
    /// cleanup to the dirty region (default). Off reproduces the
    /// invalidate-everything driver of the pass-manager refactor — the
    /// differential baseline of the `meld_pipeline` bench; both settings
    /// produce bit-identical IR and statistics.
    pub incremental: bool,
}

impl Default for MeldConfig {
    fn default() -> MeldConfig {
        MeldConfig {
            mode: MeldMode::Darm,
            threshold: 0.2,
            unpredicate: true,
            max_iterations: 32,
            incremental: true,
        }
    }
}

impl MeldConfig {
    /// The paper's branch-fusion baseline configuration.
    pub fn branch_fusion() -> MeldConfig {
        MeldConfig {
            mode: MeldMode::BranchFusion,
            ..MeldConfig::default()
        }
    }

    /// A DARM configuration with a custom profitability threshold.
    pub fn with_threshold(threshold: f64) -> MeldConfig {
        MeldConfig {
            threshold,
            ..MeldConfig::default()
        }
    }

    /// The invalidate-everything fixpoint (the pre-incremental driver):
    /// every meld drops every analysis and cleanup rescans the whole
    /// function. Kept as the differential baseline for benchmarks.
    pub fn non_incremental() -> MeldConfig {
        MeldConfig {
            incremental: false,
            ..MeldConfig::default()
        }
    }
}

/// Cumulative statistics of a [`meld_function`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeldStats {
    /// Divergent regions rewritten.
    pub melded_regions: usize,
    /// Subgraph pairs melded across all regions.
    pub melded_subgraphs: usize,
    /// Region replications performed (block ↔ region melds).
    pub replications: usize,
    /// `select` instructions inserted.
    pub selects_inserted: usize,
    /// Unaligned groups moved out by unpredication.
    pub unpredicated_groups: usize,
    /// Definitions repaired by SSA reconstruction.
    pub ssa_repairs: usize,
    /// Outer fixpoint iterations executed.
    pub iterations: usize,
}

impl MeldStats {
    /// Reconstructs the statistics from a [`MeldPass`]'s named stat
    /// entries (the per-pass `stats` column of a
    /// [`PipelineReport`]) — how a module
    /// batch recovers per-function melding statistics after the pass
    /// instances have been consumed by their pipelines. Unknown keys are
    /// ignored; missing keys stay zero.
    pub fn from_stat_entries(entries: &[(&str, u64)]) -> MeldStats {
        let mut s = MeldStats::default();
        for &(key, v) in entries {
            let v = v as usize;
            match key {
                "melded regions" => s.melded_regions = v,
                "melded subgraphs" => s.melded_subgraphs = v,
                "replications" => s.replications = v,
                "selects inserted" => s.selects_inserted = v,
                "unpredicated groups" => s.unpredicated_groups = v,
                "ssa repairs" => s.ssa_repairs = v,
                "fixpoint iterations" => s.iterations = v,
                _ => {}
            }
        }
        s
    }

    /// Recovers the statistics of the first melding pass in a pipeline
    /// report — the pass self-names `meld` or `meld-bf` depending on its
    /// mode, so both spellings are matched. Zeroes when no melding pass
    /// ran. The one recovery path shared by the CLI and the benchmark
    /// batch harness.
    pub fn from_report(report: &PipelineReport) -> MeldStats {
        report
            .passes
            .iter()
            .find(|p| p.name == "meld" || p.name == "meld-bf")
            .map(|p| MeldStats::from_stat_entries(&p.stats))
            .unwrap_or_default()
    }
}

/// How a subgraph pair would be melded, decided during planning.
#[derive(Clone)]
enum MatchKind {
    Iso(Vec<(darm_ir::BlockId, darm_ir::BlockId)>),
    ReplicateTrue(darm_ir::BlockId),
    ReplicateFalse(darm_ir::BlockId),
}

/// Result of a [`run_meld_pipeline`] call: the melding statistics plus the
/// pipeline's per-pass timing/stat report.
#[derive(Debug, Clone)]
pub struct MeldOutcome {
    /// Cumulative melding statistics.
    pub stats: MeldStats,
    /// Per-pass records (runs, changed, units, wall time) and analysis
    /// computation counts.
    pub report: PipelineReport,
}

/// The one melding driver shared by the CLI, the benchmark harness and
/// [`meld_function`]: builds a [`PassManager`] holding the [`MeldPass`] for
/// `config` and runs it over `func` with a shared analysis cache.
///
/// # Errors
///
/// Propagates pipeline failures — with [`PipelineOptions::verify_each`]
/// that includes SSA violations between passes.
pub fn run_meld_pipeline(
    func: &mut Function,
    config: &MeldConfig,
    options: PipelineOptions,
) -> Result<MeldOutcome, PipelineError> {
    let sink = MeldStatsSink::default();
    let verify_each = options.verify_each;
    let mut pm = PassManager::new(options);
    pm.add(Box::new(
        MeldPass::with_sink(*config, sink.clone()).with_verify_each(verify_each),
    ));
    let report = pm.run(func)?;
    Ok(MeldOutcome {
        stats: sink.take(),
        report,
    })
}

/// Applies the spec parameters the melding family understands on top of a
/// base configuration: `threshold=F`, `mode=darm|bf`, `unpredicate=BOOL`,
/// `max-iters=N`, `incremental=BOOL`.
fn apply_meld_params(
    mut config: MeldConfig,
    params: &mut darm_pipeline::PassParams,
) -> Result<MeldConfig, String> {
    if let Some(t) = params.take_parsed::<f64>("threshold")? {
        config.threshold = t;
    }
    if let Some(m) = params.take("mode") {
        config.mode = match m.as_str() {
            "darm" => MeldMode::Darm,
            "bf" => MeldMode::BranchFusion,
            other => {
                return Err(format!(
                    "parameter `mode`: unknown mode `{other}` (darm|bf)"
                ))
            }
        };
    }
    if let Some(u) = params.take_parsed::<bool>("unpredicate")? {
        config.unpredicate = u;
    }
    if let Some(n) = params.take_parsed::<usize>("max-iters")? {
        config.max_iterations = n;
    }
    if let Some(i) = params.take_parsed::<bool>("incremental")? {
        config.incremental = i;
    }
    Ok(config)
}

/// A pass registry holding the generic cleanup passes plus the melding
/// family: `meld` (melding exactly as configured — mode, threshold,
/// unpredication — so a CLI `--mode bf` carries into specs), `meld-bf`
/// (the branch-fusion restriction regardless of `config.mode`) and
/// `tail-merge`. The base names come from
/// [`PassRegistry::with_transforms`].
///
/// `meld` and `meld-bf` accept spec parameters overriding the base
/// configuration — `meld(threshold=0.3)`, `meld(unpredicate=false)`,
/// `meld(mode=bf)`, `meld(max-iters=4)`, `meld(incremental=false)` — so
/// the paper's ablations (threshold sweep, unpredication off) are
/// expressible as specs with no code changes. Both propagate the
/// pipeline's `verify_each` into their inner cleanup pipeline, exactly as
/// [`run_meld_pipeline`] does.
pub fn registry(config: &MeldConfig) -> PassRegistry {
    let mut r = PassRegistry::with_transforms();
    let configured = *config;
    let bf = MeldConfig {
        mode: MeldMode::BranchFusion,
        ..*config
    };
    r.register_configurable("meld", move |params, options| {
        let c = apply_meld_params(configured, params)?;
        Ok(Box::new(
            MeldPass::new(c).with_verify_each(options.verify_each),
        ))
    });
    r.register_configurable("meld-bf", move |params, options| {
        let c = apply_meld_params(bf, params)?;
        if c.mode != MeldMode::BranchFusion {
            return Err("parameter `mode`: meld-bf is fixed to branch fusion".into());
        }
        Ok(Box::new(
            MeldPass::new(c).with_verify_each(options.verify_each),
        ))
    });
    r.register("tail-merge", || Box::new(TailMergePass::default()));
    r
}

/// Runs the melding pass on `func` until no profitable melds remain
/// (Algorithm 1). Returns cumulative statistics. The function is left in
/// valid SSA form.
///
/// Equivalent to [`run_meld_pipeline`] with default options, minus the
/// [`PipelineReport`] construction nobody reads on this path; see
/// [`MeldPass`] for how the fixpoint shares cached analyses.
pub fn meld_function(func: &mut Function, config: &MeldConfig) -> MeldStats {
    let sink = MeldStatsSink::default();
    let mut pm = PassManager::new(PipelineOptions::default());
    pm.add(Box::new(MeldPass::with_sink(*config, sink.clone())));
    let mut am = darm_analysis::AnalysisManager::new();
    pm.run_quiet(func, &mut am)
        .expect("melding without verify-each cannot fail");
    sink.take()
}

/// Computes the melding plan for a region: aligns the two subgraph chains
/// with `MP_S` scoring (Definition 7) and keeps matches at or above the
/// profitability threshold. Returns `None` when nothing profitable exists.
/// The second component counts region replications the plan will perform.
/// Shared by the pipeline driver ([`MeldPass`]) and the pre-refactor
/// oracle ([`meld_function_reference`]).
pub(crate) fn plan_region(
    func: &mut Function,
    r: &MeldableRegion,
    config: &MeldConfig,
) -> Option<(Vec<PlanElement>, usize)> {
    darm_ir::fault::point("meld::plan");
    fn score_pair(
        func: &Function,
        config: &MeldConfig,
        st: &Subgraph,
        sf: &Subgraph,
    ) -> Option<(f64, MatchKind)> {
        // Scoring dominates planning cost (isomorphism + profit analysis
        // per pair), so it polls the budget and hosts a fault site.
        darm_ir::budget::poll("meld::score");
        darm_ir::fault::point("meld::score");
        if st.has_meld_barrier(func) || sf.has_meld_barrier(func) {
            return None;
        }
        match (st.is_single_block(), sf.is_single_block()) {
            (true, true) => {
                let p = subgraph_melding_profit(func, &[(st.entry, sf.entry)]);
                Some((p, MatchKind::Iso(vec![(st.entry, sf.entry)])))
            }
            (false, false) => {
                if config.mode == MeldMode::BranchFusion {
                    return None;
                }
                let pairs = isomorphism::isomorphic_pairs(func, st, sf)?;
                let p = subgraph_melding_profit(func, &pairs);
                Some((p, MatchKind::Iso(pairs)))
            }
            (true, false) => {
                if config.mode == MeldMode::BranchFusion {
                    return None;
                }
                if !func.phis_of(st.entry).is_empty() || replicate::has_cycle(func, sf) {
                    return None;
                }
                let (pos, p) = replicate::best_position(func, st, sf);
                Some((p, MatchKind::ReplicateTrue(pos)))
            }
            (false, true) => {
                if config.mode == MeldMode::BranchFusion {
                    return None;
                }
                if !func.phis_of(sf.entry).is_empty() || replicate::has_cycle(func, st) {
                    return None;
                }
                let (pos, p) = replicate::best_position(func, sf, st);
                Some((p, MatchKind::ReplicateFalse(pos)))
            }
        }
    }

    // Score memoization: the alignment DP fill asks for every (i, j) cell,
    // and the plan construction below asks again for each matched pair —
    // `score_pair` runs subgraph isomorphism / profit analysis each time, so
    // cache by the pair's entry blocks (unique per subgraph within a region).
    let mut score_cache: std::collections::HashMap<
        (darm_ir::BlockId, darm_ir::BlockId),
        Option<(f64, MatchKind)>,
    > = std::collections::HashMap::new();

    // Chain alignment: only matches meeting the threshold are allowed.
    let (_, steps) = {
        let cache = &mut score_cache;
        let func = &*func;
        global_align(
            &r.true_chain,
            &r.false_chain,
            move |st, sf| {
                let (p, _) = cache
                    .entry((st.entry, sf.entry))
                    .or_insert_with(|| score_pair(func, config, st, sf))
                    .as_ref()?;
                (*p >= config.threshold).then_some((p * 1e6) as i64)
            },
            0,
        )
    };
    if !steps.iter().any(|s| matches!(s, AlignStep::Match(..))) {
        return None;
    }

    let mut plan = Vec::new();
    let mut replications = 0;
    for step in steps {
        match step {
            AlignStep::Match(i, j) => {
                let st = r.true_chain[i].clone();
                let sf = r.false_chain[j].clone();
                let (profit, kind) = score_cache
                    .get(&(st.entry, sf.entry))
                    .cloned()
                    .flatten()
                    .expect("scored during alignment");
                match kind {
                    MatchKind::Iso(pairs) => {
                        plan.push(PlanElement::Meld {
                            st,
                            sf,
                            pairs,
                            profit,
                        });
                    }
                    MatchKind::ReplicateTrue(pos) => {
                        match replicate::replicate(func, &st, &sf, pos) {
                            Some(lprime) => {
                                let pairs = isomorphism::isomorphic_pairs(func, &lprime, &sf)
                                    .expect("replication is isomorphic by construction");
                                replications += 1;
                                plan.push(PlanElement::Meld {
                                    st: lprime,
                                    sf,
                                    pairs,
                                    profit,
                                });
                            }
                            None => {
                                plan.push(PlanElement::GapTrue(st));
                                plan.push(PlanElement::GapFalse(sf));
                            }
                        }
                    }
                    MatchKind::ReplicateFalse(pos) => {
                        match replicate::replicate(func, &sf, &st, pos) {
                            Some(lprime) => {
                                let pairs = isomorphism::isomorphic_pairs(func, &st, &lprime)
                                    .expect("replication is isomorphic by construction");
                                replications += 1;
                                plan.push(PlanElement::Meld {
                                    st,
                                    sf: lprime,
                                    pairs,
                                    profit,
                                });
                            }
                            None => {
                                plan.push(PlanElement::GapTrue(st));
                                plan.push(PlanElement::GapFalse(sf));
                            }
                        }
                    }
                }
            }
            AlignStep::GapA(i) => plan.push(PlanElement::GapTrue(r.true_chain[i].clone())),
            AlignStep::GapB(j) => plan.push(PlanElement::GapFalse(r.false_chain[j].clone())),
        }
    }
    if !plan.iter().any(|e| matches!(e, PlanElement::Meld { .. })) {
        return None;
    }
    Some((plan, replications))
}
