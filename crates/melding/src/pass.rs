//! The melding transformation as a [`Pass`], plus tail merging as a pass.
//!
//! [`MeldPass`] is Algorithm 1 restructured around the shared
//! [`AnalysisManager`]: the outer fixpoint pulls its CFG/dominator/
//! divergence snapshot from the cache instead of recomputing it wholesale,
//! candidate regions are detected exactly once per scan (the sizing pass
//! memoizes them for the processing loop), and the post-meld cleanup runs
//! as a journal-synced inner pipeline (`ssa-repair`, `instcombine`,
//! `simplify`, `dce`). In incremental mode nothing invalidates eagerly at
//! all: every mutation — region surgery and cleanup alike — is journaled,
//! and the manager reconciles each cached entry against its own window at
//! the next query, keeping what survived, updating the dominator and
//! post-dominator trees in place where the batch is small enough to win,
//! and recomputing the rest on demand.
//!
//! The rewrite *sequence* is identical to the pre-pipeline driver (kept as
//! [`meld_function_reference`](crate::reference::meld_function_reference));
//! the `pipeline_bit_identical` regression test in `darm-bench` holds the
//! two to byte-equal printed IR on every paper kernel.

use crate::region::{self, MeldableRegion};
use crate::{plan_region, Analyses, MeldConfig, MeldMode, MeldStats};
use darm_analysis::AnalysisManager;
use darm_ir::{BlockId, Function};
use darm_pipeline::{
    DcePass, InstCombinePass, Pass, PassManager, PassOutcome, PipelineOptions, ScopedPass,
    SimplifyCfgPass, SsaRepairPass,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle through which a [`MeldPass`] publishes its statistics
/// (the pass itself is consumed by the [`PassManager`] that runs it).
pub type MeldStatsSink = Rc<RefCell<MeldStats>>;

/// The DARM control-flow melding pass (or its branch-fusion restriction,
/// per [`MeldConfig::mode`]).
pub struct MeldPass {
    config: MeldConfig,
    stats: MeldStatsSink,
    cleanup: PassManager,
}

impl MeldPass {
    /// A meld pass with a private stats sink (read it back via
    /// [`MeldPass::stats`] or the pass's [`Pass::stat_entries`]).
    pub fn new(config: MeldConfig) -> MeldPass {
        MeldPass::with_sink(config, MeldStatsSink::default())
    }

    /// A meld pass publishing into a caller-owned sink — the pattern
    /// `run_meld_pipeline` uses to recover [`MeldStats`] after the pass
    /// manager has consumed the pass.
    pub fn with_sink(config: MeldConfig, stats: MeldStatsSink) -> MeldPass {
        // Algorithm 1's RunPostOptimizations, as an inner pipeline in the
        // pre-pipeline driver's exact order. In incremental mode each
        // cleanup pass restricts its rescan to the journal window since
        // its own previous run (per-meld cost) and the pipeline reconciles
        // the analysis cache through the journal after every pass — so the
        // dominator/post-dominator trees the meld surgery updated in place
        // survive the cleanup rounds instead of being dropped by coarse
        // preservation reports. Otherwise every run scans the whole
        // function and invalidates by report, as the pre-incremental
        // driver did.
        let scoped = config.incremental;
        let mut cleanup = PassManager::new(PipelineOptions {
            journal_sync: scoped,
            ..PipelineOptions::default()
        });
        cleanup
            .add(Box::new(SsaRepairPass::default().with_scoping(scoped)))
            .add(Box::new(InstCombinePass::default().with_scoping(scoped)))
            .add(Box::new(SimplifyCfgPass::default().with_scoping(scoped)))
            .add(Box::new(DcePass::default().with_scoping(scoped)));
        MeldPass {
            config,
            stats,
            cleanup,
        }
    }

    /// Reconciles the analysis cache with the mutations just performed. In
    /// incremental mode there is nothing eager to do: every mutation is
    /// journaled, and the manager reconciles each cached entry against its
    /// own window at the next query — consecutive surgeries and cleanup
    /// rounds coalesce into one reconciliation per entry per scan.
    /// Non-incremental mode drops everything, as the pre-incremental
    /// driver did.
    fn sync_analyses(&self, _func: &Function, am: &mut AnalysisManager) {
        if !self.config.incremental {
            am.invalidate_all();
        }
    }

    /// The stats sink.
    pub fn stats(&self) -> MeldStatsSink {
        self.stats.clone()
    }

    /// Enables SSA verification after each *inner* cleanup pass as well
    /// (the outer pass manager's `verify_each` only checks after the whole
    /// melding pass). Verification starts after `ssa-repair` — the IR is
    /// intentionally broken between `meld_region` and the repair.
    pub fn with_verify_each(mut self, on: bool) -> MeldPass {
        self.cleanup.options.verify_each = on;
        self
    }

    /// One fixpoint scan candidate: entry block, chain size and the
    /// memoized detection result, so the processing loop does not re-detect
    /// what the sizing pass already computed on the unchanged function.
    fn candidates(
        &self,
        func: &Function,
        a: &Analyses,
    ) -> Vec<(usize, BlockId, Option<MeldableRegion>)> {
        let mut candidates: Vec<(usize, BlockId, Option<MeldableRegion>)> = a
            .cfg
            .rpo()
            .iter()
            .copied()
            .filter(|&b| a.da.is_divergent_branch(b))
            .map(|b| {
                let r = region::detect_region(func, a, b);
                let size = r
                    .as_ref()
                    .map(|r| {
                        r.true_chain
                            .iter()
                            .chain(&r.false_chain)
                            .map(|s| s.blocks.len())
                            .sum()
                    })
                    .unwrap_or(usize::MAX / 2);
                (size, b, r)
            })
            .collect();
        // Innermost (smallest) first: melding an inner diamond before its
        // enclosing region avoids unnecessary region replication (the SB4
        // situation, §VI-B).
        candidates.sort_by_key(|&(size, b, _)| (size, std::cmp::Reverse(a.cfg.rpo_index(b))));
        candidates
    }
}

impl Pass for MeldPass {
    fn name(&self) -> &str {
        match self.config.mode {
            MeldMode::Darm => "meld",
            MeldMode::BranchFusion => "meld-bf",
        }
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let config = self.config;
        let mut stats = MeldStats::default();
        let mut mutated = false;
        if config.incremental {
            // Anchor the journal cursor so every later sync replays
            // exactly the window the fixpoint actually mutated.
            am.observe(func);
        }
        'outer: for _ in 0..config.max_iterations {
            darm_ir::budget::poll("meld::fixpoint");
            stats.iterations += 1;
            let a = Analyses::from_manager(func, am);
            if config.incremental {
                // The function is in valid, fully repaired SSA form at
                // every scan top (pipeline contract on entry; the cleanup
                // fixpoint afterwards): publishing the checkpoint lets the
                // post-meld SSA repair scope even its first scan to the
                // meld window.
                am.set_dom_checkpoint(func, a.dt.clone());
            }
            for (_, b, r) in self.candidates(func, &a) {
                // Region simplification (Definition 3/4) may change the
                // CFG; restart with fresh analyses when it does. A
                // successfully detected region is already simple — every
                // chain position has its dedicated single exit edge — so
                // the walk is provably a no-op then and is skipped (the
                // pre-pipeline driver paid for it unconditionally).
                if r.is_none() && region::simplify_region_entry(func, &a, b) {
                    mutated = true;
                    self.sync_analyses(func, am);
                    continue 'outer;
                }
                let Some(r) = r else { continue };
                let arenas_before = (func.block_capacity(), func.inst_capacity());
                let Some((plan, n_repl)) = plan_region(func, &r, &config) else {
                    // plan_region can mutate and still conclude nothing is
                    // meldable (a region replication that fails partway
                    // leaves orphan blocks behind). The arenas only grow,
                    // so a capacity delta is a sound mutation probe —
                    // stale cached analyses must not survive it (their
                    // block-indexed tables would be undersized).
                    if (func.block_capacity(), func.inst_capacity()) != arenas_before {
                        mutated = true;
                        self.sync_analyses(func, am);
                    }
                    continue;
                };
                darm_ir::fault::point("meld::codegen");
                let rstats = crate::codegen::meld_region(func, &r, &plan, config.unpredicate);
                // Melding rewrote blocks and edges: reconcile the cache
                // with exactly what the surgery touched.
                mutated = true;
                self.sync_analyses(func, am);
                stats.melded_regions += 1;
                stats.melded_subgraphs += rstats.melded_subgraphs;
                stats.selects_inserted += rstats.selects_inserted;
                stats.unpredicated_groups += rstats.unpredicated_groups;
                stats.replications += n_repl;
                let repairs_before = self.cleanup.units_of("ssa-repair");
                self.cleanup
                    .run_quiet(func, am)
                    .map_err(|e| format!("post-meld cleanup failed: {e}"))?;

                stats.ssa_repairs +=
                    (self.cleanup.units_of("ssa-repair") - repairs_before) as usize;
                continue 'outer;
            }
            break;
        }
        {
            // Accumulate, never overwrite: pass records and stat entries
            // are documented to total across repeated pipeline runs.
            let mut sink = self.stats.borrow_mut();
            sink.melded_regions += stats.melded_regions;
            sink.melded_subgraphs += stats.melded_subgraphs;
            sink.replications += stats.replications;
            sink.selects_inserted += stats.selects_inserted;
            sink.unpredicated_groups += stats.unpredicated_groups;
            sink.ssa_repairs += stats.ssa_repairs;
            sink.iterations += stats.iterations;
        }
        // A scan that melded nothing, padded nothing and grew no arena is
        // provably mutation-free. In incremental mode the cache is also
        // valid after a *mutating* run: every mutation was reconciled
        // through the journal (`sync_analyses` after surgery, the
        // journal-synced cleanup pipeline after each pass), so the warm
        // dominator/post-dominator trees survive into the next pipeline
        // stage either way.
        Ok(PassOutcome {
            preserved: if mutated && !config.incremental {
                darm_analysis::PreservedAnalyses::none()
            } else {
                darm_analysis::PreservedAnalyses::all()
            },
            changed: mutated,
            units: stats.melded_subgraphs as u64,
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        let s = self.stats.borrow();
        vec![
            ("melded regions", s.melded_regions as u64),
            ("melded subgraphs", s.melded_subgraphs as u64),
            ("replications", s.replications as u64),
            ("selects inserted", s.selects_inserted as u64),
            ("unpredicated groups", s.unpredicated_groups as u64),
            ("ssa repairs", s.ssa_repairs as u64),
            ("fixpoint iterations", s.iterations as u64),
        ]
    }

    fn reset(&mut self) {
        // The sink is shared (callers may hold clones of the Rc), so reset
        // its contents in place; the inner cleanup pipeline carries the
        // per-function journal cursors and dominator baselines.
        *self.stats.borrow_mut() = MeldStats::default();
        self.cleanup.reset_for_reuse();
    }
}

/// Classic tail merging as a pass (Table I's weakest technique).
#[derive(Debug, Default)]
pub struct TailMergePass {
    merged: u64,
}

impl Pass for TailMergePass {
    fn name(&self) -> &str {
        "tail-merge"
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let n = crate::tail_merge(func) as u64;
        self.merged += n;
        Ok(if n > 0 {
            am.invalidate_all();
            PassOutcome::cfg_changed(n)
        } else {
            PassOutcome::unchanged()
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        vec![("merged blocks", self.merged)]
    }

    fn reset(&mut self) {
        self.merged = 0;
    }
}
