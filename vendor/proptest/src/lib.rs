//! Offline stand-in for the `proptest` crate.
//!
//! This build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched. This crate implements the API subset the
//! workspace's property tests use — `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `Strategy`/`prop_map`, `Just`, `any`, ranges,
//! `collection::vec` and `option::of` — backed by a deterministic xorshift
//! RNG. Shrinking is not implemented: a failing case panics with the full
//! debug rendering of its inputs so it can be replayed by hand.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec`](fn@vec): an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` or `Some(inner)` (3:1 biased towards
    /// `Some`, mirroring proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// `proptest::arbitrary` — the `Arbitrary` trait behind [`prelude::any`].
pub mod arbitrary {
    use crate::strategy::{FullRange, Strategy};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`crate::prelude::any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! arb_via_full_range {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> FullRange<$t> {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }
    arb_via_full_range!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// `proptest::prelude` — the glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The canonical strategy for any [`Arbitrary`] type.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

// ---------------------------------------------------------------- macros ----

/// Defines property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0..10i32, v in proptest::collection::vec(0u8..5, 0..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let mut inputs = ::std::string::String::new();
                $(inputs.push_str(&format!("\n  {} = {:?}", ::std::stringify!($arg), $arg));)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` that fails the proptest case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{}: {:?} != {:?}", format!($($fmt)+), a, b);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}
