//! The `Strategy` trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// samples from the RNG.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let k = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[k].sample(rng)
    }
}

/// Strategy over a type's full value range (what [`crate::prelude::any`]
/// returns for primitive types).
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(pub(crate) PhantomData<T>);

macro_rules! full_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
full_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 != 0
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
    (A / 0, B / 1, C / 2, D / 3, E / 4);
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}
