//! Test-runner support types: configuration, RNG, and case errors.

use std::fmt;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property case (produced by `prop_assert*!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Deterministic xorshift64* RNG.
///
/// Each property derives its seed from its function name (stable across
/// runs) unless `PROPTEST_SEED` is set in the environment.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse().unwrap_or(0xDEAD_BEEF),
            Err(_) => {
                // FNV-1a over the test name.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            }
        };
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}
