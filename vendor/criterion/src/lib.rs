//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched. This crate implements the API subset the
//! workspace's benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `BenchmarkId::new`,
//! `Bencher::iter` and `black_box`.
//!
//! Timing model: each benchmark runs one warm-up call, then `sample_size`
//! timed samples (each sample is a batch sized so a sample takes ≳1 ms),
//! and reports the per-iteration median, minimum and maximum. Passing
//! `--test` (as `cargo bench -- --test` does) runs every benchmark closure
//! exactly once without timing — the smoke mode CI uses.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {} // --bench, --nocapture, ...
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Whether the harness runs in `--test` smoke mode (each benchmark
    /// executed once, untimed).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        let full = id.to_string();
        run_one(self, &full, 10, f);
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.c, &full, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reports are printed eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

fn run_one(c: &Criterion, full_id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    if let Some(filter) = &c.filter {
        if !full_id.contains(filter.as_str()) {
            return;
        }
    }
    if c.test_mode {
        let mut b = Bencher {
            test_mode: true,
            batch: 1,
            samples: Vec::new(),
        };
        f(&mut b);
        println!("test {full_id} ... ok");
        return;
    }
    let mut b = Bencher {
        test_mode: false,
        batch: 1,
        samples: Vec::with_capacity(sample_size),
    };
    // Warm-up + batch sizing: grow the batch until one batch takes ≥1 ms.
    loop {
        let t = Instant::now();
        b.samples.clear();
        f(&mut b);
        if b.samples.is_empty() {
            // Closure never called iter(); nothing to time.
            println!("{full_id:<40} (no measurement)");
            return;
        }
        if t.elapsed() >= Duration::from_millis(1) || b.batch >= 1 << 20 {
            break;
        }
        b.batch *= 4;
    }
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    let batch = b.batch as f64;
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() * 1e9 / batch)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{full_id:<40} time: [{} {} {}]",
        format_ns(lo),
        format_ns(median),
        format_ns(hi)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    test_mode: bool,
    batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one sample of the current batch size.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            black_box(f());
            return;
        }
        let t = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.samples.push(t.elapsed());
    }
}

/// Declares a benchmark group function, as the real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
