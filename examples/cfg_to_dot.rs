//! Exports Graphviz renderings of a kernel's CFG before and after melding
//! (the Fig. 4-style before/after pictures).
//!
//! ```sh
//! cargo run --release --example cfg_to_dot > /tmp/darm.dot
//! dot -Tpng /tmp/darm.dot -o darm.png   # if graphviz is installed
//! ```

use darm::analysis::to_dot;
use darm::prelude::*;

fn main() {
    let case = darm::kernels::bitonic::build_case(64);
    println!("// === before melding (divergent branches in red) ===");
    print!("{}", to_dot(&case.func));

    let mut melded = case.func.clone();
    darm::melding::meld_function(&mut melded, &MeldConfig::default());
    println!("\n// === after DARM ===");
    print!("{}", to_dot(&melded));
}
