//! The Fig. 12 experiment in miniature: how the melding-profitability
//! threshold changes DARM's effectiveness on one benchmark.
//!
//! ```sh
//! cargo run --release --example threshold_sweep
//! ```

use darm::kernels::bitonic;
use darm::prelude::*;

fn main() {
    let case = bitonic::build_case(64);
    let baseline = case.run_checked(&case.func).stats;
    println!("BIT64 baseline cycles: {}", baseline.cycles);
    println!("threshold  speedup  melded-subgraphs");
    for t in [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.8] {
        let mut f = case.func.clone();
        let stats = darm::melding::meld_function(&mut f, &MeldConfig::with_threshold(t));
        let run = case.run_checked(&f).stats;
        println!(
            "{t:9.2}  {:.3}x   {}",
            baseline.cycles as f64 / run.cycles as f64,
            stats.melded_subgraphs
        );
    }
}
