//! The paper's running example, end to end: bitonic sort (Fig. 1) through
//! every phase of the pipeline (Fig. 4), with simulated counters and a
//! correctness check.
//!
//! ```sh
//! cargo run --release --example bitonic_walkthrough
//! ```

use darm::kernels::bitonic;
use darm::prelude::*;
use darm::simt::KernelArg;

fn main() {
    let block_size = 64;
    let case = bitonic::build_case(block_size);
    println!(
        "=== bitonic sort kernel (block size {block_size}) ===\n{}",
        case.func
    );

    // Analysis phase: which branches diverge?
    let da = DivergenceAnalysis::new(&case.func);
    println!("divergent branch blocks:");
    for b in da.divergent_branch_blocks() {
        println!("  {}", case.func.block_name(b));
    }

    // Transformation phase.
    let mut melded = case.func.clone();
    let stats = darm::melding::meld_function(&mut melded, &MeldConfig::default());
    println!("\nmeld stats: {stats:?}\n");
    println!("=== after DARM ===\n{melded}");

    // Run both; verify the sort and compare counters.
    let base = case.run_checked(&case.func);
    let darm_run = case.run_checked(&melded);
    println!(
        "baseline: cycles={} sharedmem={} aluutil={:.1}%",
        base.stats.cycles,
        base.stats.shared_mem_insts,
        base.stats.alu_utilization()
    );
    println!(
        "DARM:     cycles={} sharedmem={} aluutil={:.1}%",
        darm_run.stats.cycles,
        darm_run.stats.shared_mem_insts,
        darm_run.stats.alu_utilization()
    );
    println!(
        "speedup:  {:.3}x",
        base.stats.cycles as f64 / darm_run.stats.cycles as f64
    );

    // And show that branch fusion cannot meld this control flow (Table I).
    let mut bf = case.func.clone();
    let bf_stats = darm::melding::meld_function(&mut bf, &MeldConfig::branch_fusion());
    println!(
        "branch fusion melded subgraphs: {} (cannot handle if-then regions)",
        bf_stats.melded_subgraphs
    );

    let _ = KernelArg::I32(0); // silence unused-import lint paths in docs
}
