//! Quickstart: build a divergent GPU kernel, run DARM over it, and compare
//! simulated performance before and after.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use darm::prelude::*;

fn main() {
    // if (tid % 2 == 0) out[tid] = tid*3 + 10  else out[tid] = tid*5 + 77
    // Same instruction mix on both sides: a perfect melding candidate.
    let mut f = Function::new("quickstart", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let even = f.add_block("even");
    let odd = f.add_block("odd");
    let join = f.add_block("join");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let two = b.const_i32(2);
    let rem = b.srem(tid, two);
    let c = b.icmp(IcmpPred::Eq, rem, b.const_i32(0));
    b.br(c, even, odd);
    b.switch_to(even);
    let v1 = b.mul(tid, b.const_i32(3));
    let w1 = b.add(v1, b.const_i32(10));
    let p1 = b.gep(Type::I32, b.param(0), tid);
    b.store(w1, p1);
    b.jump(join);
    b.switch_to(odd);
    let v2 = b.mul(tid, b.const_i32(5));
    let w2 = b.add(v2, b.const_i32(77));
    let p2 = b.gep(Type::I32, b.param(0), tid);
    b.store(w2, p2);
    b.jump(join);
    b.switch_to(join);
    b.ret(None);

    println!("=== original kernel ===\n{f}");

    let mut melded = f.clone();
    let stats = darm::melding::meld_function(&mut melded, &MeldConfig::default());
    println!(
        "=== after DARM ({} subgraph melds, {} selects) ===\n{melded}",
        stats.melded_subgraphs, stats.selects_inserted
    );

    // Run both on the simulator and compare.
    let mut gpu = Gpu::new(GpuConfig::default());
    let b1 = gpu.alloc_i32(&[0; 64]);
    let b2 = gpu.alloc_i32(&[0; 64]);
    let before = gpu
        .launch(
            &f,
            &LaunchConfig::linear(1, 64),
            &[darm::simt::KernelArg::Buffer(b1)],
        )
        .expect("baseline run");
    let after = gpu
        .launch(
            &melded,
            &LaunchConfig::linear(1, 64),
            &[darm::simt::KernelArg::Buffer(b2)],
        )
        .expect("melded run");
    assert_eq!(
        gpu.read_i32(b1),
        gpu.read_i32(b2),
        "melding must preserve semantics"
    );

    println!("cycles:          {} -> {}", before.cycles, after.cycles);
    println!(
        "warp issues:     {} -> {}",
        before.warp_instructions, after.warp_instructions
    );
    println!(
        "ALU utilization: {:.1}% -> {:.1}%",
        before.alu_utilization(),
        after.alu_utilization()
    );
    println!(
        "speedup:         {:.2}x",
        before.cycles as f64 / after.cycles as f64
    );
}
