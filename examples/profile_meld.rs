//! Throwaway profiling harness (not shipped): apportions meld compile time
//! across analyses vs transforms on the fig8 sweep.

use darm_analysis::{Cfg, DivergenceAnalysis, DomTree, PostDomTree};
use darm_melding::{meld_function, MeldConfig};
use std::time::Instant;

fn time_n(n: usize, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..n {
        f();
    }
    t.elapsed().as_secs_f64() / n as f64
}

fn main() {
    let mut cases = Vec::new();
    for kind in darm_kernels::synthetic::SyntheticKind::all() {
        for bs in [32, 64, 128, 256] {
            cases.push(darm_kernels::synthetic::build_case(kind, bs));
        }
    }
    let config = MeldConfig::default();
    const N: usize = 300;
    let (mut t_meld, mut t_cfg, mut t_dom, mut t_pdt, mut t_div) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let mut t_cleanup = 0.0;
    for case in &cases {
        let f = &case.func;
        t_cfg += time_n(N, || {
            std::hint::black_box(Cfg::new(f));
        });
        let cfg = Cfg::new(f);
        t_dom += time_n(N, || {
            std::hint::black_box(DomTree::new(f, &cfg));
        });
        let dt = DomTree::new(f, &cfg);
        t_pdt += time_n(N, || {
            std::hint::black_box(PostDomTree::new(f, &cfg));
        });
        t_div += time_n(N, || {
            std::hint::black_box(DivergenceAnalysis::run(f, &cfg, &dt));
        });
        t_meld += time_n(N, || {
            let mut g = f.clone();
            std::hint::black_box(meld_function(&mut g, &config));
        });
        // Cleanup transforms on the *melded* function (fixpoint no-op cost).
        let mut melded = f.clone();
        meld_function(&mut melded, &config);
        t_cleanup += time_n(N, || {
            let mut g = melded.clone();
            darm_transforms::run_instcombine(&mut g);
            darm_transforms::simplify_cfg(&mut g);
            darm_transforms::run_dce(&mut g);
            std::hint::black_box(g);
        });
    }
    // Cost of a pure no-op meld scan (= iteration 2): analyses + candidate
    // detection with nothing to do.
    let mut t_noop_scan = 0.0;
    let mut t_repair = 0.0;
    for case in &cases {
        let mut melded = case.func.clone();
        meld_function(&mut melded, &config);
        t_noop_scan += time_n(N, || {
            let mut g = melded.clone();
            std::hint::black_box(meld_function(&mut g, &config));
        });
        t_repair += time_n(N, || {
            let mut g = melded.clone();
            std::hint::black_box(darm_transforms::repair_ssa(&mut g));
        });
    }
    let mut t_clone = 0.0;
    for case in &cases {
        let f = &case.func;
        t_clone += time_n(N, || {
            std::hint::black_box(f.clone());
        });
    }
    // Analyses + detection on the melded function (the iter-2 scan parts).
    let (mut t_analyses2, mut t_detect2) = (0.0, 0.0);
    for case in &cases {
        let mut melded = case.func.clone();
        meld_function(&mut melded, &config);
        t_analyses2 += time_n(N, || {
            std::hint::black_box(darm_melding::Analyses::new(&melded));
        });
        let a = darm_melding::Analyses::new(&melded);
        t_detect2 += time_n(N, || {
            for &b in a.cfg.rpo() {
                if a.da.is_divergent_branch(b) {
                    std::hint::black_box(darm_melding::region::detect_region(&melded, &a, b));
                }
            }
        });
    }
    println!("sum over 32 cases, per-call averages:");
    println!("iter2 analyses      : {:9.1} us", t_analyses2 * 1e6);
    println!("iter2 detect        : {:9.1} us", t_detect2 * 1e6);
    println!("noop meld scan      : {:9.1} us", t_noop_scan * 1e6);
    println!("noop ssa repair     : {:9.1} us", t_repair * 1e6);
    println!("function clone      : {:9.1} us", t_clone * 1e6);
    println!("meld_function total : {:9.1} us", t_meld * 1e6);
    println!("cfg                 : {:9.1} us", t_cfg * 1e6);
    println!("domtree             : {:9.1} us", t_dom * 1e6);
    println!("postdomtree         : {:9.1} us", t_pdt * 1e6);
    println!("divergence          : {:9.1} us", t_div * 1e6);
    println!("cleanup no-op pass  : {:9.1} us", t_cleanup * 1e6);
}
