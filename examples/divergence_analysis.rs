//! Inspecting DARM's analysis phase: divergence analysis, meldable
//! divergent region detection, SESE chains, and melding profitability.
//!
//! ```sh
//! cargo run --release --example divergence_analysis
//! ```

use darm::align::block_melding_profit;
use darm::analysis::{Cfg, DomTree, PostDomTree};
use darm::melding::{Analyses, MeldableRegion};
use darm::prelude::*;

fn main() {
    let case =
        darm::kernels::synthetic::build_case(darm::kernels::synthetic::SyntheticKind::Sb2, 64);
    let func = &case.func;
    println!("kernel:\n{func}");

    let cfg = Cfg::new(func);
    let dt = DomTree::new(func, &cfg);
    let pdt = PostDomTree::new(func, &cfg);
    let da = DivergenceAnalysis::run(func, &cfg, &dt);

    println!("block analysis:");
    for &b in cfg.rpo() {
        println!(
            "  {:14} idom={:<12} ipdom={:<12} divergent-branch={}",
            func.block_name(b),
            dt.idom(b)
                .map(|d| func.block_name(d).to_string())
                .unwrap_or_else(|| "-".into()),
            pdt.ipdom(b)
                .map(|d| func.block_name(d).to_string())
                .unwrap_or_else(|| "-".into()),
            da.is_divergent_branch(b),
        );
    }

    let analyses = Analyses::new(func);
    for &b in analyses.cfg.rpo() {
        let Some(region): Option<MeldableRegion> =
            darm::melding::region::detect_region(func, &analyses, b)
        else {
            continue;
        };
        println!(
            "\nmeldable divergent region at {} (exit {}):",
            func.block_name(region.branch_block),
            func.block_name(region.exit)
        );
        for (label, chain) in [("true", &region.true_chain), ("false", &region.false_chain)] {
            for (i, sg) in chain.iter().enumerate() {
                let blocks: Vec<_> = sg.blocks.iter().map(|&b| func.block_name(b)).collect();
                println!("  {label} path subgraph {i}: {blocks:?}");
            }
        }
        // Profitability of the first pair of subgraph entries.
        let (st, sf) = (&region.true_chain[0], &region.false_chain[0]);
        println!(
            "  MP_B(entry, entry) = {:.3}",
            block_melding_profit(func, st.entry, sf.entry)
        );
    }
}
