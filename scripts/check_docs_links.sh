#!/usr/bin/env bash
# Doc-path hygiene: every backtick-quoted repo path mentioned in the
# top-level docs must actually exist, so ARCHITECTURE.md's crate map and
# the README can't silently rot as files move. Run from the repo root
# (CI does); exits 1 listing every stale reference.
set -u

cd "$(dirname "$0")/.." || exit 1

status=0
for doc in ARCHITECTURE.md README.md; do
    [ -f "$doc" ] || { echo "missing doc: $doc"; status=1; continue; }
    # Backtick-quoted tokens that look like repo paths: start with a
    # known top-level directory and contain no spaces. `grep -o` pulls
    # each quoted token; the sed strips the backticks.
    refs=$(grep -o '`\(crates\|src\|scripts\|vendor\|examples\)/[^` ]*`' "$doc" \
        | sed 's/`//g' | sort -u)
    for ref in $refs; do
        if [ ! -e "$ref" ]; then
            echo "$doc: stale path reference: $ref"
            status=1
        fi
    done
done

# The README must link the architecture overview.
if ! grep -q 'ARCHITECTURE.md' README.md; then
    echo "README.md: missing link to ARCHITECTURE.md"
    status=1
fi

exit $status
